"""Scope-aware memory arenas unifying HLS, runtime and RMA allocation.

One :class:`MemoryManager` per runtime lazily materialises one bounded
:class:`Arena` per scope instance / task / isomalloc segment, with all
base addresses handed out by a central :class:`BaseAddressRegistry`
(provably disjoint regions -- the three colliding magic base constants
of the pre-arena runtime are gone).  Every allocation call site in the
tree routes through an arena with one kind taxonomy (:data:`KINDS`),
which is what makes per-node / per-level / per-kind accounting and
shutdown-time leak reporting possible.
"""

from repro.memory.arena import Arena, KINDS, LEVEL_SEGMENT, LEVEL_TASK
from repro.memory.manager import (
    LeakRecord,
    LeakReport,
    MemoryManager,
    SEGMENT_KEY,
    scope_level,
)
from repro.memory.registry import (
    BaseAddressRegistry,
    DEFAULT_FLOOR,
    DEFAULT_REGION_BYTES,
)

__all__ = [
    "Arena",
    "BaseAddressRegistry",
    "DEFAULT_FLOOR",
    "DEFAULT_REGION_BYTES",
    "KINDS",
    "LEVEL_SEGMENT",
    "LEVEL_TASK",
    "LeakRecord",
    "LeakReport",
    "MemoryManager",
    "SEGMENT_KEY",
    "scope_level",
]
