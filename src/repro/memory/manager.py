"""The scope-aware memory manager every runtime owns.

The paper's central claim is that user data can be shared at a *chosen*
level of the memory hierarchy (``node``, ``numa``, ``cache(L)``,
``core``).  The placement layer must therefore be hierarchical too:
a ``numa``-scoped variable should live in (and be accounted against)
its NUMA instance's storage, not be silently collapsed into the node's.

:class:`MemoryManager` materialises one :class:`~repro.memory.arena.
Arena` per :class:`~repro.machine.scopes.ScopeInstance` on first use,
plus per-task arenas for the process backend's private images and
per-node isomalloc segment arenas for the section IV-C shared-segment
technique.  All bases come from one
:class:`~repro.memory.registry.BaseAddressRegistry`, so every arena's
address range is provably disjoint (segments excepted, by design).

On top of the arenas the manager provides the accounting the memory
experiments (Tables II-IV) and ``Runtime.memory_metrics()`` consume:
live bytes per node, per hierarchy level and per allocation kind -- and
the shutdown-time leak report ``Runtime.finalize`` renders, since every
arena knows its owner and every allocation its kind.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.machine.scopes import ScopeInstance, ScopeKind, ScopeSpec
from repro.memory.arena import Arena, LEVEL_SEGMENT, LEVEL_TASK
from repro.memory.registry import BaseAddressRegistry

#: registry key shared by every node's HLS segment (isomalloc: the
#: segment starts at the same virtual address on all nodes)
SEGMENT_KEY = "hls-segment"


def scope_level(spec: ScopeSpec) -> str:
    """The hierarchy-level bucket of a (canonical) scope spec:
    ``node``, ``numa`` / ``numa(2)``, ``cache(L)``, ``core``."""
    if spec.kind is ScopeKind.CACHE:
        return f"cache({spec.level})"
    if spec.kind is ScopeKind.NUMA and spec.level not in (None, 1):
        return f"numa({spec.level})"
    return spec.kind.value


@dataclass(frozen=True)
class LeakRecord:
    """One allocation still live at finalize time."""

    arena: str        # arena name
    level: str        # hierarchy-level bucket of the arena
    kind: str         # allocation kind ("runtime" | "hls" | "rma" | ...)
    label: str
    owner: Optional[int]
    addr: int
    size: int


@dataclass
class LeakReport:
    """Unfreed allocations of the tracked kinds at shutdown."""

    records: List[LeakRecord] = field(default_factory=list)
    kinds: Tuple[str, ...] = ()

    @property
    def total_bytes(self) -> int:
        return sum(r.size for r in self.records)

    def by_kind(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for r in self.records:
            out[r.kind] = out.get(r.kind, 0) + r.size
        return out

    def __bool__(self) -> bool:
        return bool(self.records)

    def render(self) -> str:
        if not self.records:
            return "no unfreed allocations (kinds: %s)" % ", ".join(self.kinds)
        lines = [
            f"{len(self.records)} unfreed allocation(s), "
            f"{self.total_bytes} bytes:"
        ]
        for r in sorted(self.records, key=lambda r: (r.kind, r.arena, r.addr)):
            owner = f" owner=task{r.owner}" if r.owner is not None else ""
            lines.append(
                f"  [{r.kind}] {r.label or '<unlabelled>'} @ {r.addr:#x} "
                f"({r.size}B) in {r.arena} (level {r.level}){owner}"
            )
        return "\n".join(lines)


class MemoryManager:
    """Per-runtime arena factory and hierarchy-aware accountant."""

    def __init__(
        self,
        runtime,
        *,
        registry: Optional[BaseAddressRegistry] = None,
        namespace: Optional[str] = None,
    ) -> None:
        self.runtime = runtime
        self.registry = registry if registry is not None else BaseAddressRegistry()
        #: reservation-name prefix: empty for a private registry (the
        #: historical names), a unique per-runtime tag when the registry
        #: is shared between concurrent runtimes (repro.service) so
        #: sibling runtimes' reservations can never collide
        self.namespace = namespace or ""
        self._prefix = f"{self.namespace}:" if self.namespace else ""
        self._arenas: Dict[Tuple, Arena] = {}
        self._lock = threading.Lock()
        self._spiller = None

    # ------------------------------------------------------------- factories
    def _materialise(self, key: Tuple, make) -> Arena:
        with self._lock:
            arena = self._arenas.get(key)
            if arena is None:
                arena = make()
                arena.spiller = self._spiller
                self._arenas[key] = arena
            return arena

    def set_spiller(self, spiller) -> None:
        """Install the storage spill policy on every arena, existing and
        future (see :class:`repro.storage.residency.SpillManager`)."""
        with self._lock:
            self._spiller = spiller
            for arena in self._arenas.values():
                arena.spiller = spiller

    def cap_node(self, node: int, budget: int) -> Arena:
        """Bound a node arena's *additional* live bytes to ``budget``
        (on top of whatever is already resident -- the runtime's comm
        pools are charged at init).  Past the cap, allocations spill
        cold storage chunks instead of raising.  Returns the arena."""
        arena = self.node_arena(node)
        arena.set_capacity(arena.live_bytes + int(budget))
        return arena

    def cap_task(self, rank: int, budget: int) -> Arena:
        """Like :meth:`cap_node`, for a task's private arena (the
        process backend's address space)."""
        arena = self.task_arena(rank)
        arena.set_capacity(arena.live_bytes + int(budget))
        return arena

    def scope_arena(self, inst: ScopeInstance) -> Arena:
        """The arena backing one scope instance (lazily created).

        The spec is canonicalised first, so ``cache`` (default level)
        and ``cache(llc)`` resolve to the same arena."""
        machine = self.runtime.machine
        spec = machine.canonical_scope(inst.spec)
        inst = ScopeInstance(spec, inst.index)
        key = ("scope", inst)

        def make() -> Arena:
            base, limit = self.registry.reserve(f"{self._prefix}scope:{inst}")
            return Arena(
                base=base, limit=limit, name=f"arena:{inst}",
                level=scope_level(spec), scope=inst,
                node=machine.scope_instance_node(inst),
            )

        return self._materialise(key, make)

    def node_arena(self, node: int) -> Arena:
        """The node-scope arena (the thread backend's shared space)."""
        return self.scope_arena(
            ScopeInstance(ScopeSpec(ScopeKind.NODE), node)
        )

    def task_arena(self, rank: int) -> Arena:
        """A task's private arena (process-backend address space)."""
        key = ("task", rank)

        def make() -> Arena:
            base, limit = self.registry.reserve(f"{self._prefix}task:{rank}")
            return Arena(
                base=base, limit=limit, name=f"proc{rank}",
                level=LEVEL_TASK, owner_task=rank,
            )

        return self._materialise(key, make)

    def segment_arena(self, node: int) -> Arena:
        """A node's isomalloc HLS segment (section IV-C): every node's
        segment shares one base address -- the property that makes
        cross-process pointers into HLS data valid."""
        key = ("segment", node)

        def make() -> Arena:
            # the isomalloc aliasing must hold between *this runtime's*
            # nodes only: namespace the shared key so two jobs sharing
            # one registry never alias each other's HLS segments
            base, limit = self.registry.reserve_shared(
                f"{self._prefix}{SEGMENT_KEY}"
            )
            return Arena(
                base=base, limit=limit, name=f"hls-segment-node{node}",
                level=LEVEL_SEGMENT, node=node,
            )

        return self._materialise(key, make)

    # ------------------------------------------------------------ inventory
    def arenas(self) -> List[Arena]:
        with self._lock:
            return list(self._arenas.values())

    def node_arenas(self) -> Dict[int, Arena]:
        """Materialised node-scope arenas, keyed by node."""
        with self._lock:
            return {
                a.scope.index: a
                for a in self._arenas.values()
                if a.scope is not None and a.scope.spec.kind is ScopeKind.NODE
            }

    def arenas_on_node(self, node: int) -> List[Arena]:
        rt = self.runtime
        return [a for a in self.arenas() if a.home_node(rt) == node]

    # ----------------------------------------------------------- accounting
    def node_live_bytes(self, node: int) -> int:
        """Live simulated bytes attributed to ``node``, over every arena
        resident there (node/numa/cache/core scopes, per-task images,
        isomalloc segments)."""
        return sum(a.live_bytes for a in self.arenas_on_node(node))

    def live_by_level(self, node: Optional[int] = None) -> Dict[str, int]:
        """Live bytes per hierarchy level, machine-wide or for one node.
        Per node, the values sum to :meth:`node_live_bytes`."""
        arenas = self.arenas() if node is None else self.arenas_on_node(node)
        out: Dict[str, int] = {}
        for a in arenas:
            live = a.live_bytes
            if live:
                out[a.level] = out.get(a.level, 0) + live
        return out

    def live_by_kind(self, node: Optional[int] = None) -> Dict[str, int]:
        """Live bytes per allocation kind, machine-wide or per node."""
        arenas = self.arenas() if node is None else self.arenas_on_node(node)
        out: Dict[str, int] = {}
        for a in arenas:
            for kind, size in a.live_bytes_by_kind().items():
                out[kind] = out.get(kind, 0) + size
        return out

    def peak_live_bytes(self) -> int:
        """Sum of per-arena peaks (an upper bound on the true peak)."""
        return sum(a.peak_live_bytes for a in self.arenas())

    # ---------------------------------------------------------------- leaks
    def leak_report(
        self, kinds: Tuple[str, ...] = ("runtime", "hls", "rma", "storage")
    ) -> LeakReport:
        """Everything still live of the given kinds -- the shutdown-time
        report ``Runtime.finalize`` returns."""
        records: List[LeakRecord] = []
        for arena in self.arenas():
            for a in arena.live_allocations():
                if a.kind in kinds:
                    records.append(
                        LeakRecord(
                            arena=arena.name, level=arena.level,
                            kind=a.kind, label=a.label, owner=a.owner,
                            addr=a.addr, size=a.size,
                        )
                    )
        return LeakReport(records=records, kinds=tuple(kinds))


__all__ = [
    "LeakRecord",
    "LeakReport",
    "MemoryManager",
    "SEGMENT_KEY",
    "scope_level",
]
