"""Central base-address registry: provably disjoint arena regions.

Before this layer existed, simulated base addresses were magic
constants scattered across the runtime: the thread backend placed node
spaces at ``(node + 1) << 40``, the process backend placed per-task
spaces at ``(rank + 1) << 36`` and the shared-segment baseline hard
coded ``1 << 45``.  The first two genuinely collide: rank 15's space
starts at ``16 << 36 == 1 << 40``, exactly node 0's base, so cache-sim
traces drawn from two *different* simulated spaces could alias.

The registry replaces all of them.  The address space above ``floor``
is carved into fixed-size regions; every arena reserves one region
under a unique name and receives ``(base, limit)``.  Reservations made
with :meth:`BaseAddressRegistry.reserve` are pairwise disjoint by
construction (a property the arena test suite checks).

:meth:`BaseAddressRegistry.reserve_shared` is the one sanctioned
exception: the isomalloc-style HLS segments of section IV-C must start
at the *same* virtual address on every node, so all callers of one
shared key receive the same region -- aliased on purpose, and only
across arenas that never exchange raw pointers.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Tuple

#: default first region base; far above the legacy per-space bases so a
#: half-migrated call site would fault loudly in ``find`` rather than
#: silently alias
DEFAULT_FLOOR = 1 << 44
#: default region size (1 TiB of simulated addresses per arena)
DEFAULT_REGION_BYTES = 1 << 40


class BaseAddressRegistry:
    """Hands out disjoint ``(base, limit)`` regions to arenas."""

    def __init__(
        self,
        *,
        floor: int = DEFAULT_FLOOR,
        region_bytes: int = DEFAULT_REGION_BYTES,
    ) -> None:
        if floor <= 0 or region_bytes <= 0:
            raise ValueError("floor and region_bytes must be positive")
        if region_bytes & (region_bytes - 1):
            raise ValueError(
                f"region_bytes must be a power of two, got {region_bytes}"
            )
        self.region_bytes = region_bytes
        self._next = ((floor + region_bytes - 1) // region_bytes) * region_bytes
        self._regions: Dict[str, Tuple[int, int]] = {}
        self._shared: Dict[str, Tuple[int, int]] = {}
        self._namespaces = 0
        self._lock = threading.Lock()

    def make_namespace(self, prefix: str = "rt") -> str:
        """A fresh namespace string (``rt0``, ``rt1``, ...).

        A registry shared between runtimes (the multi-tenant job
        service) hands each runtime a unique namespace; the memory
        manager prefixes every reservation name with it, so two
        runtimes' ``scope:...`` names can never collide in
        :meth:`reserve` -- and the per-namespace shared keys keep each
        runtime's isomalloc segments aliased only with *its own*
        nodes' segments, never a sibling job's."""
        with self._lock:
            ns = f"{prefix}{self._namespaces}"
            self._namespaces += 1
            return ns

    def _carve(self) -> Tuple[int, int]:
        base = self._next
        self._next = base + self.region_bytes
        return base, self._next

    def reserve(self, name: str) -> Tuple[int, int]:
        """Reserve a fresh region under ``name``; returns (base, limit).

        Names are unique: reserving the same name twice raises, so no
        two arenas can ever share a ``reserve``d range."""
        with self._lock:
            if name in self._regions:
                raise ValueError(f"region {name!r} already reserved")
            region = self._carve()
            self._regions[name] = region
            return region

    def reserve_shared(self, key: str) -> Tuple[int, int]:
        """The region for ``key``, carved on first use and returned
        verbatim to every later caller -- the isomalloc property (same
        virtual base on every node) for HLS shared segments."""
        with self._lock:
            got = self._shared.get(key)
            if got is None:
                got = self._carve()
                self._shared[key] = got
            return got

    def regions(self) -> List[Tuple[str, int, int]]:
        """All unique (non-shared) reservations as (name, base, limit),
        for the pairwise-disjointness property tests."""
        with self._lock:
            return [(n, b, l) for n, (b, l) in sorted(self._regions.items())]

    def shared_regions(self) -> List[Tuple[str, int, int]]:
        with self._lock:
            return [(k, b, l) for k, (b, l) in sorted(self._shared.items())]


__all__ = ["BaseAddressRegistry", "DEFAULT_FLOOR", "DEFAULT_REGION_BYTES"]
