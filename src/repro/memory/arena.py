"""Memory arenas: an address space plus its place in the hierarchy.

An :class:`Arena` is the unit of the scope-aware allocation layer: one
bounded :class:`~repro.memsim.address_space.AddressSpace` carved out of
a registry region, tagged with *where it lives* -- the
:class:`~repro.machine.scopes.ScopeInstance` it backs (HLS scope
arenas), the task that owns it (process-backend private images) or the
node it belongs to (isomalloc segments).  The tags are what let
:class:`~repro.memory.manager.MemoryManager` attribute every live byte
to a node and a hierarchy level, and let ``Runtime.finalize`` name the
owner of anything left unfreed.
"""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

from repro.memsim.address_space import AddressSpace, AddressSpaceExhausted, Allocation

if TYPE_CHECKING:  # pragma: no cover
    from repro.machine.scopes import ScopeInstance

#: canonical allocation-kind taxonomy shared by every call site
#: (``Allocation.kind``): application data, runtime comm buffers and
#: pools, HLS module images / shared-segment heap, RMA windows and
#: mirrors, legacy comm tag, and §VI baseline registrations.
KINDS = ("app", "runtime", "hls", "rma", "comm", "baseline", "storage")

#: hierarchy-level buckets an arena can be accounted under.  Scope
#: arenas use the paper's four levels (cache levels spelled out, e.g.
#: ``cache(2)``); ``task`` is a process-backend private image space and
#: ``segment`` an isomalloc HLS segment (both node-resident).
LEVEL_TASK = "task"
LEVEL_SEGMENT = "segment"


class Arena(AddressSpace):
    """One bounded address space with hierarchy identity."""

    def __init__(
        self,
        *,
        base: int,
        limit: Optional[int],
        name: str,
        level: str,
        scope: Optional["ScopeInstance"] = None,
        node: Optional[int] = None,
        owner_task: Optional[int] = None,
    ) -> None:
        super().__init__(base=base, name=name, limit=limit)
        #: hierarchy-level bucket ("node", "numa", "cache(L)", "core",
        #: "task", "segment")
        self.level = level
        #: the scope instance this arena backs, for scope arenas
        self.scope = scope
        #: fixed home node, when the arena cannot migrate
        self.node = node
        #: owning task rank, for per-task arenas (its node may change
        #: when the task migrates)
        self.owner_task = owner_task
        #: spill policy: an object with ``reclaim(arena, need) -> int``
        #: (bytes freed), consulted when an allocation overruns the
        #: arena's live-bytes *capacity* (never the address-range
        #: ``limit`` -- bump addresses are not recycled, so only
        #: resident-byte pressure is recoverable)
        self.spiller = None

    def alloc(self, size: int, **kw) -> Allocation:
        while True:
            try:
                return super().alloc(size, **kw)
            except AddressSpaceExhausted as exc:
                spiller = self.spiller
                if (
                    spiller is None
                    or getattr(exc, "reason", "limit") != "capacity"
                    or spiller.reclaim(self, size) <= 0
                ):
                    raise

    def home_node(self, runtime) -> Optional[int]:
        """The node this arena's bytes count against right now."""
        if self.owner_task is not None:
            return runtime.node_of(self.owner_task)
        return self.node

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        where = self.scope if self.scope is not None else (
            f"task{self.owner_task}" if self.owner_task is not None
            else f"node{self.node}"
        )
        return (
            f"Arena({self.name!r}, level={self.level!r}, at={where}, "
            f"live={self.live_bytes}B)"
        )


__all__ = ["Arena", "KINDS", "LEVEL_TASK", "LEVEL_SEGMENT"]
