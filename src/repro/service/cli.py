"""``repro-serve``: the job-service command-line entry point.

Server mode (default) starts a :class:`JobManager` plus its HTTP
observability endpoint and blocks until interrupted::

    repro-serve --port 8900 --capacity-mb 4096 --queue-limit 128

Client mode submits a JSON job spec to a running server and optionally
waits for completion, polling the job endpoint::

    repro-serve --submit job.json --url http://127.0.0.1:8900 --wait

Demo mode (``--demo``) runs a self-contained burst of built-in kernel
jobs against an in-process manager and prints the service metrics --
the quickest smoke test of the whole service stack.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
import urllib.request
from typing import Optional

from repro.service.manager import JobManager
from repro.service.server import ObservabilityServer
from repro.service.spec import JobSpec


def _build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro-serve",
        description="multi-tenant MPI-runtime job service",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8900)
    p.add_argument("--capacity-mb", type=int, default=None,
                   help="admission-control memory capacity (MB); "
                        "default: unbounded")
    p.add_argument("--queue-limit", type=int, default=64)
    p.add_argument("--workers", type=int, default=8)
    p.add_argument("--no-leak-enforcement", action="store_true",
                   help="do not fail jobs on non-empty leak reports")
    p.add_argument("--submit", metavar="SPEC.json", default=None,
                   help="client mode: POST the given job spec")
    p.add_argument("--url", default=None,
                   help="client mode: server base URL")
    p.add_argument("--wait", action="store_true",
                   help="client mode: poll until the job finishes")
    p.add_argument("--demo", action="store_true",
                   help="run a burst of kernel jobs in-process and exit")
    return p


def _client(args) -> int:
    url = args.url or f"http://{args.host}:{args.port}"
    with open(args.submit) as fh:
        spec = JobSpec.from_json(fh.read())
    req = urllib.request.Request(
        f"{url}/jobs", data=spec.to_json().encode(),
        headers={"Content-Type": "application/json"}, method="POST",
    )
    with urllib.request.urlopen(req) as resp:
        reply = json.load(resp)
    print(json.dumps(reply, sort_keys=True))
    if not args.wait:
        return 0
    job_id = reply["id"]
    while True:
        with urllib.request.urlopen(f"{url}/jobs/{job_id}") as resp:
            info = json.load(resp)
        if info["state"] in ("completed", "failed", "rejected"):
            print(json.dumps(info, sort_keys=True))
            return 0 if info["state"] == "completed" else 1
        time.sleep(0.2)


def _demo() -> int:
    mgr = JobManager(capacity_bytes=512 << 20, max_workers=4)
    jobs = [
        mgr.submit(JobSpec(app="ring", n_tasks=4, backend="coop",
                           params={"seed": i}))
        for i in range(8)
    ]
    for job in jobs:
        mgr.wait(job, timeout=60.0)
    print(json.dumps(mgr.service_metrics(), indent=2, sort_keys=True))
    mgr.shutdown()
    return 0


def main(argv: Optional[list] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.demo:
        return _demo()
    if args.submit:
        return _client(args)
    capacity = (
        args.capacity_mb << 20 if args.capacity_mb is not None else None
    )
    manager = JobManager(
        capacity_bytes=capacity,
        queue_limit=args.queue_limit,
        max_workers=args.workers,
        enforce_leaks=not args.no_leak_enforcement,
    )
    server = ObservabilityServer(manager, host=args.host, port=args.port)
    server.start()
    print(f"repro-serve listening on {server.url}", flush=True)
    try:
        while True:
            time.sleep(1.0)
    except KeyboardInterrupt:
        pass
    finally:
        server.stop()
        manager.shutdown(wait=False)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
