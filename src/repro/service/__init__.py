"""The multi-tenant job service (DESIGN.md section 17).

Layers a long-running service over the runtime without changing its
programming model: declarative :class:`JobSpec` submissions resolve
through an :class:`AppRegistry`, a :class:`JobManager` runs many
runtimes concurrently against one shared
:class:`~repro.memory.registry.BaseAddressRegistry` with admission
control from arena accounting, ``Runtime.finalize()`` leak reports are
enforced per job, and unified ``Runtime.metrics()`` snapshots stream
from a stdlib-HTTP observability endpoint (``repro-serve``).

Quick use::

    from repro.service import JobManager, JobSpec

    with JobManager(capacity_bytes=1 << 30, max_workers=8) as mgr:
        job = mgr.submit(JobSpec(app="ring", n_tasks=4, backend="coop"))
        mgr.wait(job)
        print(job.results, mgr.job_metrics(job.id)["p2p"])
"""

from repro.service.apps import AppEntry, AppRegistry, DEFAULT_APPS
from repro.service.errors import (
    AdmissionError,
    JobLeakError,
    QueueFullError,
    ServiceError,
    UnknownAppError,
)
from repro.service.manager import Job, JobManager
from repro.service.server import ObservabilityServer
from repro.service.spec import JobSpec

__all__ = [
    "AdmissionError",
    "AppEntry",
    "AppRegistry",
    "DEFAULT_APPS",
    "Job",
    "JobLeakError",
    "JobManager",
    "JobSpec",
    "ObservabilityServer",
    "QueueFullError",
    "ServiceError",
    "UnknownAppError",
]
