"""The app registry: job names -> runnable programs.

Jobs are declarative: a :class:`~repro.service.spec.JobSpec` names an
app and passes parameters; the registry maps the name to code.  Two
kinds of entry exist:

* **task** apps -- a factory ``factory(rt, **params) -> main`` that
  builds the per-task ``main(ctx)`` for a *managed* runtime.  The
  :class:`~repro.service.manager.JobManager` constructs the runtime
  (shared :class:`~repro.memory.registry.BaseAddressRegistry`, chosen
  backend/sharing/fault plan), calls ``rt.run(main)``, snapshots
  ``rt.metrics()`` and enforces the ``finalize()`` leak report.  The
  built-in kernels below are deterministic: for a fixed ``(seed,
  n_tasks)`` they return bit-identical per-rank checksums on every
  backend and sharing -- the property the load harness uses to assert
  cross-job isolation.

* **driver** apps -- the existing self-contained :mod:`repro.apps`
  entry points (``run_mesh_update``, ``run_matmul``, ...).  They build
  their own runtime internally, so the service runs them as opaque
  units: admission control still applies (declared footprint), but the
  unified metrics snapshot does not.

Both kinds are registered under plain names so a JSON job submission
fully describes a run.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Tuple

import numpy as np

from repro.service.errors import UnknownAppError


@dataclass(frozen=True)
class AppEntry:
    """One registered app."""

    name: str
    kind: str                                # "task" | "driver"
    factory: Optional[Callable] = None       # task: (rt, **params) -> main
    driver: Optional[Callable] = None        # driver: (config) -> result
    config_cls: Optional[type] = None        # driver: params -> config
    description: str = ""


class AppRegistry:
    """Name -> :class:`AppEntry` mapping (instance-scoped: tests build
    private registries; the module-level :data:`DEFAULT_APPS` is only a
    default argument, never hidden mutable state of a manager)."""

    def __init__(self) -> None:
        self._entries: Dict[str, AppEntry] = {}

    def register(self, entry: AppEntry) -> AppEntry:
        if entry.name in self._entries:
            raise ValueError(f"app {entry.name!r} already registered")
        if entry.kind not in ("task", "driver"):
            raise ValueError(f"unknown app kind {entry.kind!r}")
        if entry.kind == "task" and entry.factory is None:
            raise ValueError("task apps need a factory")
        if entry.kind == "driver" and (
            entry.driver is None or entry.config_cls is None
        ):
            raise ValueError("driver apps need driver and config_cls")
        self._entries[entry.name] = entry
        return entry

    def task(self, name: str, description: str = ""):
        """Decorator: register a task-app factory under ``name``."""
        def deco(factory: Callable) -> Callable:
            self.register(AppEntry(
                name=name, kind="task", factory=factory,
                description=description,
            ))
            return factory
        return deco

    def get(self, name: str) -> AppEntry:
        try:
            return self._entries[name]
        except KeyError:
            raise UnknownAppError(
                f"unknown app {name!r}; registered: "
                + ", ".join(sorted(self._entries))
            ) from None

    def names(self) -> Tuple[str, ...]:
        return tuple(sorted(self._entries))

    def describe(self) -> Dict[str, Dict[str, str]]:
        return {
            n: {"kind": e.kind, "description": e.description}
            for n, e in sorted(self._entries.items())
        }


def _crc(arr: np.ndarray) -> int:
    return zlib.crc32(np.ascontiguousarray(arr).tobytes())


#: the default registry every JobManager uses unless handed another
DEFAULT_APPS = AppRegistry()


@DEFAULT_APPS.task("ring", "p2p ring exchange; returns per-rank checksums")
def _ring_factory(rt, *, seed: int = 0, elems: int = 128, rounds: int = 2,
                  spin: int = 0):
    """Each rank passes a deterministic payload around the ring
    ``rounds`` times, folding a crc per hop, then allreduces the crcs.
    ``spin`` adds busy work per hop (wall-clock occupancy for the load
    harness's concurrency window)."""

    def main(ctx):
        comm = ctx.comm_world
        n = comm.size
        data = np.arange(int(elems), dtype=np.int64) * (int(seed) + 1) + ctx.rank
        acc = _crc(data)
        for r in range(int(rounds)):
            comm.send(data, (ctx.rank + 1) % n, tag=r)
            data = comm.recv(source=(ctx.rank - 1) % n, tag=r, own=True)
            acc = zlib.crc32(data.tobytes(), acc)
            for _ in range(int(spin)):
                acc = zlib.crc32(data.tobytes(), acc)
        total = comm.allreduce(int(acc))
        return (ctx.rank, int(acc), int(total))

    return main


@DEFAULT_APPS.task("allreduce", "collective fold; returns shared checksum")
def _allreduce_factory(rt, *, seed: int = 0, elems: int = 256,
                       rounds: int = 2):
    def main(ctx):
        comm = ctx.comm_world
        data = (np.arange(int(elems), dtype=np.int64) + int(seed)
                + ctx.rank * 7)
        total = data
        for _ in range(int(rounds)):
            total = comm.allreduce(total)
        comm.barrier()
        return _crc(total)

    return main


@DEFAULT_APPS.task("hls_table", "node-scope HLS shared table; ranks "
                                "checksum the single-written contents")
def _hls_table_factory(rt, *, seed: int = 0, elems: int = 64):
    from repro.hls import HLSProgram

    prog = HLSProgram(rt, enabled=True)
    prog.declare("T", shape=(int(elems),), dtype=np.float64, scope="node")

    def main(ctx):
        h = prog.attach(ctx)

        def fill():
            h.get("T")[:] = np.arange(int(elems), dtype=np.float64) + int(seed)

        h.single("T", fill)
        h.barrier("T")
        return _crc(h.get("T"))

    main.cleanup = prog.close
    return main


@DEFAULT_APPS.task("alloc_churn", "allocate/free churn against the job's "
                                  "arenas; leak=True leaks on purpose")
def _alloc_churn_factory(rt, *, nbytes: int = 1 << 16, iters: int = 8,
                         leak: bool = False):
    def main(ctx):
        live = []
        for i in range(int(iters)):
            a = ctx.alloc(int(nbytes), label=f"churn{i}-r{ctx.rank}",
                          kind="hls")
            live.append(a)
        keep = 1 if leak else 0
        for a in live[keep:]:
            ctx.free(a)
        ctx.comm_world.barrier()
        return int(nbytes) * keep

    return main


@DEFAULT_APPS.task("hog", "over-allocates its arena; dies with "
                          "AddressSpaceExhausted")
def _hog_factory(rt, *, factor: int = 2):
    def main(ctx):
        space = rt.space_for(ctx.rank)
        want = (space.limit - space.base) * int(factor)
        a = ctx.alloc(int(want), label=f"hog-r{ctx.rank}")
        ctx.free(a)  # pragma: no cover - alloc raises first
        return 0

    return main


@DEFAULT_APPS.task("sleepy", "parks on the (virtual) clock, then barriers")
def _sleepy_factory(rt, *, seconds: float = 0.01):
    def main(ctx):
        ctx.sleep(float(seconds))
        ctx.comm_world.barrier()
        return ctx.rank

    return main


def _register_paper_apps(registry: AppRegistry) -> None:
    """The five paper evaluation drivers, registered declaratively."""
    from repro.apps import (
        EulerMHDConfig,
        GadgetConfig,
        MatmulConfig,
        MeshUpdateConfig,
        TachyonConfig,
        run_eulermhd,
        run_gadget,
        run_matmul,
        run_mesh_update,
        run_tachyon,
    )

    for name, run, cfg in (
        ("mesh_update", run_mesh_update, MeshUpdateConfig),
        ("matmul", run_matmul, MatmulConfig),
        ("eulermhd", run_eulermhd, EulerMHDConfig),
        ("gadget", run_gadget, GadgetConfig),
        ("tachyon", run_tachyon, TachyonConfig),
    ):
        registry.register(AppEntry(
            name=name, kind="driver", driver=run, config_cls=cfg,
            description=f"paper app {name} (self-contained driver)",
        ))


_register_paper_apps(DEFAULT_APPS)


__all__ = ["AppEntry", "AppRegistry", "DEFAULT_APPS"]
