"""The multi-tenant job manager.

One :class:`JobManager` runs many :class:`~repro.runtime.runtime.
Runtime` instances concurrently in one process -- the long-running
service the ROADMAP's "millions of users" item asks for.  Its
responsibilities, in lifecycle order:

**Admission control.**  Every job declares a resource footprint
(:attr:`JobSpec.footprint_bytes`).  The manager keeps a memory
*capacity*; a job whose footprint can never fit is rejected with
:class:`AdmissionError` at submit time, a job that would fit once
running jobs finish is parked in a bounded FIFO queue, and when the
queue is full the submit raises :class:`QueueFullError` -- explicit
backpressure, the client retries.  Queued jobs are admitted strictly in
FIFO order as capacity frees (no overtaking: a large queued job is not
starved by small late arrivals).

**Isolation.**  All managed runtimes draw their arena regions from one
shared :class:`~repro.memory.registry.BaseAddressRegistry`; each gets a
unique namespace, so every job's address regions are provably disjoint
from every other job's (the property the isolation suite checks).  A
job's crash (:class:`~repro.runtime.errors.InjectedCrash`), arena
exhaustion, or leak is recorded on *that* job and never propagates to
the manager or a sibling job.

**Teardown enforcement.**  Every managed runtime is finalized at job
end; a non-empty leak report fails the job with :class:`JobLeakError`
(when ``enforce_leaks``, the default) -- leak reports are
machine-checkable, not advisory.

**Observability.**  Per-job unified metrics snapshots
(``Runtime.metrics()``) are captured at completion and streamable live
while the job runs; :meth:`JobManager.service_metrics` aggregates
service-level counters (states, capacity, queue depth, latency
percentiles).  :mod:`repro.service.server` serves both over HTTP.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, List, Optional

from repro.memory.registry import BaseAddressRegistry
from repro.runtime.runtime import Runtime
from repro.service.apps import DEFAULT_APPS, AppRegistry
from repro.service.errors import (
    AdmissionError,
    JobLeakError,
    QueueFullError,
)
from repro.service.spec import JobSpec

#: terminal job states
DONE_STATES = ("completed", "failed", "rejected")


@dataclass
class Job:
    """One submitted job and everything the service learned about it."""

    id: int
    spec: JobSpec
    state: str = "queued"            # queued|admitted|running|completed|failed|rejected
    submitted_at: float = 0.0
    admitted_at: Optional[float] = None
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    results: Optional[List[Any]] = None
    error: Optional[BaseException] = None
    metrics: Optional[Dict[str, Dict]] = None   # frozen unified snapshot
    leak_bytes: int = 0
    runtime: Any = None              # live Runtime while running (task apps)
    done: threading.Event = field(default_factory=threading.Event)

    # ------------------------------------------------------------ derived
    @property
    def queue_wait_s(self) -> Optional[float]:
        if self.admitted_at is None:
            return None
        return self.admitted_at - self.submitted_at

    @property
    def latency_s(self) -> Optional[float]:
        """Submit-to-finish latency (the service-level number the load
        harness distributions are built from)."""
        if self.finished_at is None:
            return None
        return self.finished_at - self.submitted_at

    @property
    def run_s(self) -> Optional[float]:
        if self.finished_at is None or self.started_at is None:
            return None
        return self.finished_at - self.started_at

    def info(self) -> Dict[str, Any]:
        """JSON-ready job summary (the /jobs endpoint row)."""
        return {
            "id": self.id,
            "app": self.spec.app,
            "state": self.state,
            "n_tasks": self.spec.n_tasks,
            "backend": self.spec.backend,
            "sharing": self.spec.sharing,
            "footprint_bytes": self.spec.footprint_bytes,
            "queue_wait_s": self.queue_wait_s,
            "latency_s": self.latency_s,
            "run_s": self.run_s,
            "error": (
                f"{type(self.error).__name__}: {self.error}"
                if self.error is not None else None
            ),
            "leak_bytes": self.leak_bytes,
        }


def _percentile(sorted_vals: List[float], q: float) -> float:
    """Nearest-rank percentile of an already-sorted list."""
    if not sorted_vals:
        return 0.0
    idx = min(len(sorted_vals) - 1, max(0, int(q * len(sorted_vals))))
    return sorted_vals[idx]


class JobManager:
    """Runs many runtimes concurrently with admission control.

    Parameters
    ----------
    capacity_bytes:
        Memory capacity admission control checks declared footprints
        against (None: unbounded -- every job admits immediately).
    queue_limit:
        Bound of the FIFO admission queue; a submit past it raises
        :class:`QueueFullError` (backpressure).
    max_workers:
        OS threads executing admitted jobs.  Admission (memory) and
        execution (workers) are separate budgets: an admitted job may
        still wait briefly for a worker.
    registry:
        The shared base-address registry (one is created when omitted).
    apps:
        The app registry jobs resolve their names against.
    enforce_leaks:
        Fail jobs whose finalize leak report is non-empty.
    on_start:
        Test/telemetry hook, called in the worker thread right before a
        job's runtime starts executing (the load harness uses it to gate
        hundreds of jobs onto one start line).
    """

    def __init__(
        self,
        *,
        capacity_bytes: Optional[int] = None,
        queue_limit: int = 64,
        max_workers: int = 8,
        registry: Optional[BaseAddressRegistry] = None,
        apps: Optional[AppRegistry] = None,
        enforce_leaks: bool = True,
        on_start: Optional[Callable[[Job], None]] = None,
    ) -> None:
        if queue_limit < 0:
            raise ValueError("queue_limit must be >= 0")
        if max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        self.capacity_bytes = capacity_bytes
        self.queue_limit = queue_limit
        self.max_workers = max_workers
        self.registry = registry if registry is not None else BaseAddressRegistry()
        self.apps = apps if apps is not None else DEFAULT_APPS
        self.enforce_leaks = enforce_leaks
        self.on_start = on_start

        self._lock = threading.Lock()
        self._jobs: Dict[int, Job] = {}
        self._next_id = 0
        self._committed = 0              # admitted-but-unfinished footprints
        self._queue: Deque[Job] = deque()
        self._ready: Deque[Job] = deque()  # admitted, waiting for a worker
        self._work = threading.Condition(self._lock)
        self._workers: List[threading.Thread] = []
        self._running = 0
        self.peak_running = 0            # concurrency high-water mark
        self._shutdown = False
        self._started = False

    # ---------------------------------------------------------- lifecycle
    def _ensure_workers(self) -> None:
        if self._started:
            return
        self._started = True
        for i in range(self.max_workers):
            t = threading.Thread(
                target=self._worker, name=f"job-worker-{i}", daemon=True,
            )
            self._workers.append(t)
            t.start()

    def shutdown(self, *, wait: bool = True, timeout: float = 60.0) -> None:
        """Stop accepting jobs; optionally wait for in-flight jobs."""
        if wait:
            self.drain(timeout=timeout)
        with self._lock:
            self._shutdown = True
            self._work.notify_all()
        for t in self._workers:
            t.join(timeout=5.0)

    def __enter__(self) -> "JobManager":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()

    # ----------------------------------------------------------- admission
    def submit(self, spec: JobSpec) -> Job:
        """Submit one job: admit, queue, or raise.

        Raises :class:`AdmissionError` when the declared footprint can
        never fit the capacity, :class:`QueueFullError` when it would
        fit later but the bounded queue is full, and
        :class:`UnknownAppError` for an unregistered app name."""
        self.apps.get(spec.app)          # fail fast on unknown apps
        self._ensure_workers()
        with self._lock:
            if self._shutdown:
                raise AdmissionError("service is shutting down")
            cap = self.capacity_bytes
            if cap is not None and spec.footprint_bytes > cap:
                raise AdmissionError(
                    f"declared footprint {spec.footprint_bytes} exceeds "
                    f"service capacity {cap}; the job can never be admitted"
                )
            job = Job(id=self._next_id, spec=spec,
                      submitted_at=time.monotonic())
            self._next_id += 1
            self._jobs[job.id] = job
            # FIFO fairness: with anyone already queued, new arrivals
            # queue behind them even if they would fit right now.
            if not self._queue and self._fits_locked(spec.footprint_bytes):
                self._admit_locked(job)
            else:
                if len(self._queue) >= self.queue_limit:
                    del self._jobs[job.id]
                    raise QueueFullError(
                        f"admission queue full ({self.queue_limit} jobs); "
                        "retry later"
                    )
                self._queue.append(job)
            return job

    def _fits_locked(self, footprint: int) -> bool:
        cap = self.capacity_bytes
        return cap is None or self._committed + footprint <= cap

    def _admit_locked(self, job: Job) -> None:
        self._committed += job.spec.footprint_bytes
        job.state = "admitted"
        job.admitted_at = time.monotonic()
        self._ready.append(job)
        self._work.notify()

    def _release(self, job: Job) -> None:
        """Return a finished job's footprint and drain the queue head(s)
        that now fit -- strictly FIFO."""
        with self._lock:
            self._committed -= job.spec.footprint_bytes
            while self._queue and self._fits_locked(
                self._queue[0].spec.footprint_bytes
            ):
                self._admit_locked(self._queue.popleft())

    # ------------------------------------------------------------- workers
    def _worker(self) -> None:
        while True:
            with self._lock:
                while not self._ready and not self._shutdown:
                    self._work.wait(timeout=1.0)
                if self._shutdown and not self._ready:
                    return
                job = self._ready.popleft()
                self._running += 1
                self.peak_running = max(self.peak_running, self._running)
            try:
                self._execute(job)
            finally:
                with self._lock:
                    self._running -= 1
                self._release(job)
                job.done.set()

    def _execute(self, job: Job) -> None:
        """Run one admitted job to a terminal state.  Never raises: a
        job's failure is recorded on the job, not propagated -- one
        tenant's crash must not take the worker (or a sibling) down."""
        spec = job.spec
        entry = self.apps.get(spec.app)
        job.state = "running"
        job.started_at = time.monotonic()
        if self.on_start is not None:
            try:
                self.on_start(job)
            except Exception as exc:     # hook bugs fail the job, loudly
                job.state = "failed"
                job.error = exc
                job.finished_at = time.monotonic()
                return
        try:
            if entry.kind == "driver":
                cfg = entry.config_cls(**spec.params)
                job.results = [entry.driver(cfg)]
            else:
                rt = Runtime(
                    spec.machine_for(), n_tasks=spec.n_tasks,
                    timeout=spec.timeout, sharing=spec.sharing,
                    backend=spec.backend, algorithm=spec.algorithm,
                    schedule=spec.schedule, faults=spec.fault_plan,
                    registry=self.registry, name=f"job{job.id}",
                )
                job.runtime = rt
                run_error: Optional[BaseException] = None
                try:
                    main = entry.factory(rt, **spec.params)
                    job.results = rt.run(main)
                    # factories may attach a teardown (e.g. releasing
                    # HLS images) so the leak report comes back clean
                    cleanup = getattr(main, "cleanup", None)
                    if cleanup is not None:
                        cleanup()
                except BaseException as exc:  # noqa: BLE001 - recorded below
                    run_error = exc
                finally:
                    # even a crashed job gets its final metrics snapshot
                    # and its teardown enforced
                    try:
                        job.metrics = rt.metrics().snapshot()
                    except Exception:   # pragma: no cover - best effort
                        pass
                    report = rt.finalize()
                    job.runtime = None
                    job.leak_bytes = report.total_bytes
                if run_error is not None:
                    raise run_error
                if report and self.enforce_leaks:
                    raise JobLeakError(job.id, report)
            job.state = "completed"
        except BaseException as exc:  # noqa: BLE001 - isolate the tenant
            job.state = "failed"
            job.error = exc
        finally:
            job.finished_at = time.monotonic()

    # ---------------------------------------------------------------- query
    def job(self, job_id: int) -> Job:
        with self._lock:
            return self._jobs[job_id]

    def jobs(self, state: Optional[str] = None) -> List[Job]:
        with self._lock:
            out = list(self._jobs.values())
        if state is not None:
            out = [j for j in out if j.state == state]
        return out

    def wait(self, job: Job, timeout: Optional[float] = None) -> Job:
        """Block until the job reaches a terminal state."""
        if not job.done.wait(timeout):
            raise TimeoutError(f"job {job.id} still {job.state}")
        return job

    def drain(self, timeout: float = 120.0) -> None:
        """Wait for every submitted job to finish."""
        deadline = time.monotonic() + timeout
        while True:
            with self._lock:
                pending = [
                    j for j in self._jobs.values()
                    if j.state not in DONE_STATES
                ]
            if not pending:
                return
            if time.monotonic() > deadline:
                states = {}
                for j in pending:
                    states[j.state] = states.get(j.state, 0) + 1
                raise TimeoutError(f"drain timed out with {states}")
            pending[0].done.wait(timeout=0.2)

    def job_metrics(self, job_id: int) -> Optional[Dict[str, Dict]]:
        """The unified metrics snapshot of one job: the frozen
        completion snapshot for finished jobs, a live snapshot for a
        running task-app job, None before the runtime exists."""
        job = self.job(job_id)
        if job.metrics is not None:
            return job.metrics
        rt = job.runtime
        if rt is not None:
            return rt.metrics().snapshot()
        return None

    def service_metrics(self) -> Dict[str, Any]:
        """Aggregated service counters: per-state job tallies, memory
        commitment vs capacity, queue depth, concurrency high-water
        mark, and submit-to-finish latency percentiles."""
        with self._lock:
            jobs = list(self._jobs.values())
            committed = self._committed
            queued = len(self._queue)
            running = self._running
            peak = self.peak_running
        states: Dict[str, int] = {}
        latencies: List[float] = []
        waits: List[float] = []
        for j in jobs:
            states[j.state] = states.get(j.state, 0) + 1
            if j.latency_s is not None:
                latencies.append(j.latency_s)
            if j.queue_wait_s is not None:
                waits.append(j.queue_wait_s)
        latencies.sort()
        waits.sort()
        return {
            "jobs": len(jobs),
            "states": states,
            "committed_bytes": committed,
            "capacity_bytes": self.capacity_bytes,
            "queue_depth": queued,
            "queue_limit": self.queue_limit,
            "running": running,
            "peak_running": peak,
            "latency_s": {
                "p50": _percentile(latencies, 0.50),
                "p95": _percentile(latencies, 0.95),
                "max": latencies[-1] if latencies else 0.0,
            },
            "queue_wait_s": {
                "p50": _percentile(waits, 0.50),
                "p95": _percentile(waits, 0.95),
                "max": waits[-1] if waits else 0.0,
            },
        }


__all__ = ["DONE_STATES", "Job", "JobManager"]
