"""Service-layer errors (admission control, job lifecycle)."""

from __future__ import annotations


class ServiceError(Exception):
    """Base class of every job-service error."""


class UnknownAppError(ServiceError):
    """The job spec names an app the registry does not know."""


class AdmissionError(ServiceError):
    """The job was rejected at submission time.

    Raised when the declared footprint can *never* fit the service's
    memory capacity -- queueing would deadlock the queue head forever.
    """


class QueueFullError(AdmissionError):
    """Backpressure: the job would fit eventually, but the bounded
    admission queue is at its limit.  Clients should retry later."""


class JobLeakError(ServiceError):
    """``Runtime.finalize()`` reported unfreed allocations at job
    teardown and the service enforces leak-free teardown."""

    def __init__(self, job_id: int, report) -> None:
        self.job_id = job_id
        self.report = report
        super().__init__(
            f"job {job_id} leaked {report.total_bytes} bytes:\n"
            + report.render()
        )


__all__ = [
    "AdmissionError",
    "JobLeakError",
    "QueueFullError",
    "ServiceError",
    "UnknownAppError",
]
