"""The stdlib-HTTP observability endpoint of the job service.

Routes (all JSON):

* ``GET  /healthz``            -- liveness + service counters digest
* ``GET  /apps``               -- the app registry (names, kinds)
* ``GET  /metrics``            -- :meth:`JobManager.service_metrics`
* ``GET  /jobs``               -- job summaries (``?state=`` filters)
* ``GET  /jobs/<id>``          -- one job's summary
* ``GET  /jobs/<id>/metrics``  -- the job's unified metrics snapshot
  (live while running, frozen at completion)
* ``POST /jobs``               -- submit a :class:`JobSpec` as JSON;
  202 on admit/queue, 422 when the footprint can never fit, 429 on
  queue-full backpressure

Built on ``http.server.ThreadingHTTPServer`` -- no third-party
dependency -- and bound to an ephemeral port by default so tests and
the load harness can run many servers concurrently.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Optional, Tuple

from repro.service.errors import (
    AdmissionError,
    QueueFullError,
    UnknownAppError,
)
from repro.service.manager import JobManager
from repro.service.spec import JobSpec


class _Handler(BaseHTTPRequestHandler):
    """One request; the manager is reached through the server."""

    server_version = "repro-serve/1.0"
    protocol_version = "HTTP/1.1"

    # silence the default stderr access log (the service's own metrics
    # replace it); error_message_format stays JSON-free but unused
    def log_message(self, fmt: str, *args: Any) -> None:  # noqa: A003
        pass

    @property
    def manager(self) -> JobManager:
        return self.server.manager  # type: ignore[attr-defined]

    # ------------------------------------------------------------ plumbing
    def _reply(self, code: int, payload: Any) -> None:
        body = json.dumps(payload, sort_keys=True).encode()
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _job_id(self, part: str) -> Optional[int]:
        try:
            return int(part)
        except ValueError:
            return None

    # ------------------------------------------------------------- routes
    def do_GET(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        path, _, query = self.path.partition("?")
        parts = [p for p in path.split("/") if p]
        if path == "/healthz":
            sm = self.manager.service_metrics()
            self._reply(200, {"ok": True, "jobs": sm["jobs"],
                              "running": sm["running"],
                              "queue_depth": sm["queue_depth"]})
        elif path == "/apps":
            self._reply(200, self.manager.apps.describe())
        elif path == "/metrics":
            self._reply(200, self.manager.service_metrics())
        elif parts and parts[0] == "jobs":
            self._jobs_get(parts, query)
        else:
            self._reply(404, {"error": f"no route {path!r}"})

    def _jobs_get(self, parts, query: str) -> None:
        if len(parts) == 1:
            state = None
            for kv in query.split("&"):
                if kv.startswith("state="):
                    state = kv.split("=", 1)[1]
            self._reply(200, [j.info() for j in self.manager.jobs(state)])
            return
        job_id = self._job_id(parts[1])
        if job_id is None:
            self._reply(404, {"error": f"bad job id {parts[1]!r}"})
            return
        try:
            job = self.manager.job(job_id)
        except KeyError:
            self._reply(404, {"error": f"no job {job_id}"})
            return
        if len(parts) == 2:
            self._reply(200, job.info())
        elif len(parts) == 3 and parts[2] == "metrics":
            snap = self.manager.job_metrics(job_id)
            if snap is None:
                self._reply(404, {"error": f"job {job_id} has no metrics "
                                           "(not started, or a driver app)"})
            else:
                self._reply(200, snap)
        else:
            self._reply(404, {"error": "unknown job subresource"})

    def do_POST(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        if self.path.rstrip("/") != "/jobs":
            self._reply(404, {"error": f"no route {self.path!r}"})
            return
        length = int(self.headers.get("Content-Length", "0"))
        try:
            spec = JobSpec.from_json(self.rfile.read(length).decode())
        except (ValueError, TypeError, json.JSONDecodeError) as exc:
            self._reply(400, {"error": f"bad job spec: {exc}"})
            return
        try:
            job = self.manager.submit(spec)
        except QueueFullError as exc:
            self._reply(429, {"error": str(exc)})
        except UnknownAppError as exc:
            self._reply(400, {"error": str(exc)})
        except AdmissionError as exc:
            self._reply(422, {"error": str(exc)})
        else:
            self._reply(202, {"id": job.id, "state": job.state})


class ObservabilityServer:
    """A threaded HTTP server streaming one manager's state."""

    def __init__(self, manager: JobManager, *, host: str = "127.0.0.1",
                 port: int = 0) -> None:
        self.manager = manager
        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.manager = manager  # type: ignore[attr-defined]
        self._httpd.daemon_threads = True
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> Tuple[str, int]:
        return self._httpd.server_address[:2]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> "ObservabilityServer":
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, name="repro-serve",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)

    def __enter__(self) -> "ObservabilityServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()


__all__ = ["ObservabilityServer"]
