"""Declarative job specifications.

A :class:`JobSpec` is everything the service needs to run one job:
which app (a name in the :mod:`repro.service.apps` registry), on what
simulated machine, with which runtime policies (sharing, execution
backend, collective algorithm, schedule policy), under which fault
plan, and with what declared resource footprint -- the number the
admission controller checks against the service's memory capacity.

Specs round-trip through canonical JSON (sorted keys, compact
separators, the repo-wide convention), so jobs can be submitted over
the observability endpoint or stored as artifacts.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.faults.plan import FaultPlan
from repro.machine.presets import (
    nehalem_ex_node,
    small_test_machine,
)
from repro.machine.topology import Machine, build_machine
from repro.runtime.errors import MPIError

#: default declared footprint when the spec does not carry one (covers
#: the runtime's own comm pools for small jobs)
DEFAULT_FOOTPRINT = 64 << 20


@dataclass(frozen=True)
class JobSpec:
    """One declarative job submission."""

    app: str                                  # app-registry name
    n_tasks: int = 2
    params: Dict[str, Any] = field(default_factory=dict)  # app kwargs
    preset: str = "flat"                      # machine preset (see machine_for)
    sharing: str = "private"                  # "private" | "shared"
    backend: str = "threads"                  # "threads" | "coop"
    algorithm: Optional[str] = None           # collective algorithm
    schedule: Optional[str] = None            # coop schedule policy spec
    fault_plan: Optional[FaultPlan] = None    # chaos plan for this job
    footprint_bytes: int = DEFAULT_FOOTPRINT  # declared resource footprint
    timeout: float = 30.0                     # runtime deadlock watchdog

    def __post_init__(self) -> None:
        if not self.app:
            raise ValueError("job spec needs an app name")
        if self.n_tasks < 1:
            raise ValueError("n_tasks must be >= 1")
        if self.footprint_bytes < 0:
            raise ValueError("footprint_bytes must be >= 0")

    # ------------------------------------------------------------- machine
    def machine_for(self) -> Machine:
        """Build the simulated machine this spec names.

        Presets: ``flat`` (one node, one core per task), ``small``
        (the 2-socket unit-test machine), ``nehalem`` or
        ``nehalem:<scale>`` (the paper's 4-socket node, scaled down).
        """
        preset = self.preset
        if preset in ("flat", ""):
            return build_machine(
                n_nodes=1, sockets_per_node=1,
                cores_per_socket=self.n_tasks, caches=(), name="flat",
            )
        if preset.startswith("flat:"):
            n_nodes = int(preset.split(":", 1)[1])
            per = max(1, -(-self.n_tasks // n_nodes))  # ceil division
            return build_machine(
                n_nodes=n_nodes, sockets_per_node=1,
                cores_per_socket=per, caches=(), name=f"flat{n_nodes}",
            )
        if preset == "small":
            return small_test_machine()
        if preset == "nehalem" or preset.startswith("nehalem:"):
            scale = 64
            if ":" in preset:
                scale = int(preset.split(":", 1)[1])
            return nehalem_ex_node(scale=scale)
        raise MPIError(f"unknown machine preset {self.preset!r}")

    # --------------------------------------------------------------- (de)ser
    def to_dict(self) -> Dict[str, Any]:
        return {
            "app": self.app,
            "n_tasks": self.n_tasks,
            "params": dict(self.params),
            "preset": self.preset,
            "sharing": self.sharing,
            "backend": self.backend,
            "algorithm": self.algorithm,
            "schedule": self.schedule,
            "fault_plan": (
                self.fault_plan.to_dict() if self.fault_plan is not None
                else None
            ),
            "footprint_bytes": self.footprint_bytes,
            "timeout": self.timeout,
        }

    def to_json(self) -> str:
        """Canonical JSON: equal specs serialise identically."""
        return json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"))

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "JobSpec":
        data = dict(data)
        plan = data.get("fault_plan")
        if plan is not None and not isinstance(plan, FaultPlan):
            data["fault_plan"] = FaultPlan.from_dict(plan)
        known = {
            "app", "n_tasks", "params", "preset", "sharing", "backend",
            "algorithm", "schedule", "fault_plan", "footprint_bytes",
            "timeout",
        }
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown job spec fields: {sorted(unknown)}")
        return cls(**data)

    @classmethod
    def from_json(cls, text: str) -> "JobSpec":
        return cls.from_dict(json.loads(text))


__all__ = ["DEFAULT_FOOTPRINT", "JobSpec"]
