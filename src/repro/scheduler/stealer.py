"""Victim selection for cross-node work stealing.

A :class:`WorkStealer` wraps one task's :class:`~repro.scheduler.queue.
ChunkQueue` handle with a victim order: the first pass is a seeded
random permutation of the other nodes (decorrelates thieves that drain
simultaneously), and once load observations exist the order becomes
richest-first -- a cheap load gossip piggybacked on the counters the
protocol already reads: every steal attempt sees the victim's packed
head/tail word, and the observed remaining counts are cached and reused
to rank victims, no extra messages.
"""

from __future__ import annotations

import random
from typing import Dict, List

from repro.scheduler.queue import ChunkQueue


class WorkStealer:
    """Per-task victim picker over a chunk queue's node set."""

    def __init__(self, queue: ChunkQueue, *, seed: int = 0) -> None:
        self.queue = queue
        rank = queue.comm.rank
        self._rng = random.Random((int(seed) << 20) ^ (0x5EED ^ rank))
        others = [n for n in queue.nodes if n != queue.node]
        self._rng.shuffle(others)
        #: randomized base order (also the tie-break once gossip exists)
        self._order: List[int] = others
        #: node -> last observed remaining chunks (the gossip cache)
        self._seen: Dict[int, int] = {}

    def observe(self, node: int, remaining: int) -> None:
        self._seen[node] = int(remaining)

    def victims(self) -> List[int]:
        """Victim order for one steal round: randomized until any load
        has been observed, then richest-first (stale observations and
        never-seen nodes fall back to the randomized order)."""
        if not self._seen:
            return list(self._order)
        pos = {n: i for i, n in enumerate(self._order)}
        return sorted(
            self._order, key=lambda n: (-self._seen.get(n, 0), pos[n])
        )


__all__ = ["WorkStealer"]
