"""Loop self-scheduling over HLS node queues and one-sided atomics.

``dynamic_for`` is the entry point; policies, the chunk queue and the
work stealer are exported for direct use and for the property suite.
"""

from repro.scheduler.api import (
    LoopReport,
    TaskLoopStats,
    dynamic_for,
    policy_spec,
)
from repro.scheduler.policy import (
    FactoringPolicy,
    FixedChunkPolicy,
    GuidedPolicy,
    SelfSchedPolicy,
    StaticPolicy,
    make_policy,
)
from repro.scheduler.queue import (
    ChunkQueue,
    node_chunk_tables,
    node_layout,
    pack_counters,
    unpack_counters,
)
from repro.scheduler.stealer import WorkStealer

__all__ = [
    "ChunkQueue",
    "FactoringPolicy",
    "FixedChunkPolicy",
    "GuidedPolicy",
    "LoopReport",
    "SelfSchedPolicy",
    "StaticPolicy",
    "TaskLoopStats",
    "WorkStealer",
    "dynamic_for",
    "make_policy",
    "node_chunk_tables",
    "node_layout",
    "pack_counters",
    "policy_spec",
    "unpack_counters",
]
