"""Chunk-sizing policies for loop self-scheduling.

A :class:`SelfSchedPolicy` splits one node's iteration range into an
ordered list of chunks; the runtime-side machinery (queues, claims,
steals) is policy-agnostic.  The classic trade-off: large chunks
amortise claim overhead but strand work on stragglers, small chunks
balance load but pay one atomic per chunk.  The policies here are the
standard ladder (Eleliemy & Ciorba, arXiv:1903.09510):

========== =============================================================
static     one chunk per worker, even split (the oracle decomposition)
fixed:K    constant chunks of K iterations (pure self-scheduling at K=1)
guided     guided self-scheduling: next chunk = ceil(remaining / P)
factoring  batches of P equal chunks, each batch half the remaining work
========== =============================================================
"""

from __future__ import annotations

from typing import List, Tuple, Union


class SelfSchedPolicy:
    """Interface: split ``[0, n_iters)`` for ``n_workers`` claimants."""

    name = "abstract"

    def chunks(self, n_iters: int, n_workers: int) -> List[Tuple[int, int]]:
        """Ordered ``(lo, hi)`` chunk list covering ``[0, n_iters)``
        exactly once.  Must be deterministic: every task recomputes the
        same table for its node."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class StaticPolicy(SelfSchedPolicy):
    """Even contiguous split, one chunk per worker (sizes differ by
    at most one iteration)."""

    name = "static"

    def chunks(self, n_iters: int, n_workers: int) -> List[Tuple[int, int]]:
        n_workers = max(1, int(n_workers))
        out = []
        for w in range(n_workers):
            lo = (n_iters * w) // n_workers
            hi = (n_iters * (w + 1)) // n_workers
            if hi > lo:
                out.append((lo, hi))
        return out


class FixedChunkPolicy(SelfSchedPolicy):
    """Constant chunk size ``k`` (chunk self-scheduling; ``k=1`` is
    pure self-scheduling)."""

    name = "fixed"

    def __init__(self, k: int = 4) -> None:
        if k < 1:
            raise ValueError("fixed-chunk size must be >= 1")
        self.k = int(k)

    def chunks(self, n_iters: int, n_workers: int) -> List[Tuple[int, int]]:
        del n_workers
        return [
            (lo, min(lo + self.k, n_iters))
            for lo in range(0, n_iters, self.k)
        ]


class GuidedPolicy(SelfSchedPolicy):
    """Guided self-scheduling (GSS): each chunk is ``ceil(remaining /
    n_workers)``, floored at ``min_chunk`` -- exponentially decreasing
    sizes, so early claims are cheap and the tail is fine-grained."""

    name = "guided"

    def __init__(self, min_chunk: int = 1) -> None:
        if min_chunk < 1:
            raise ValueError("guided min_chunk must be >= 1")
        self.min_chunk = int(min_chunk)

    def chunks(self, n_iters: int, n_workers: int) -> List[Tuple[int, int]]:
        n_workers = max(1, int(n_workers))
        out = []
        lo = 0
        while lo < n_iters:
            remaining = n_iters - lo
            size = max(-(-remaining // n_workers), self.min_chunk)
            out.append((lo, min(lo + size, n_iters)))
            lo += size
        return out


class FactoringPolicy(SelfSchedPolicy):
    """Factoring: rounds of ``n_workers`` equal chunks, each round
    allocating half of the remaining iterations -- more robust than GSS
    when per-iteration cost variance is high."""

    name = "factoring"

    def __init__(self, min_chunk: int = 1) -> None:
        if min_chunk < 1:
            raise ValueError("factoring min_chunk must be >= 1")
        self.min_chunk = int(min_chunk)

    def chunks(self, n_iters: int, n_workers: int) -> List[Tuple[int, int]]:
        n_workers = max(1, int(n_workers))
        out = []
        lo = 0
        while lo < n_iters:
            remaining = n_iters - lo
            size = max(-(-remaining // (2 * n_workers)), self.min_chunk)
            for _ in range(n_workers):
                if lo >= n_iters:
                    break
                hi = min(lo + size, n_iters)
                out.append((lo, hi))
                lo = hi
        return out


PolicyLike = Union[str, SelfSchedPolicy]


def make_policy(spec: PolicyLike) -> SelfSchedPolicy:
    """Resolve a policy spec: an instance passes through; strings are
    ``"static"`` (alias ``"even"``), ``"fixed[:K]"``, ``"guided[:MIN]"``
    or ``"factoring[:MIN]"``."""
    if isinstance(spec, SelfSchedPolicy):
        return spec
    name, _, arg = str(spec).partition(":")
    name = name.strip().lower()
    try:
        if name in ("static", "even"):
            return StaticPolicy()
        if name == "fixed":
            return FixedChunkPolicy(int(arg)) if arg else FixedChunkPolicy()
        if name == "guided":
            return GuidedPolicy(int(arg)) if arg else GuidedPolicy()
        if name == "factoring":
            return FactoringPolicy(int(arg)) if arg else FactoringPolicy()
    except ValueError as exc:
        raise ValueError(f"bad policy argument in {spec!r}: {exc}") from None
    raise ValueError(
        f"unknown self-scheduling policy {spec!r} "
        f"(want static | fixed[:K] | guided[:MIN] | factoring[:MIN])"
    )


__all__ = [
    "SelfSchedPolicy",
    "StaticPolicy",
    "FixedChunkPolicy",
    "GuidedPolicy",
    "FactoringPolicy",
    "make_policy",
]
