"""``dynamic_for`` -- hierarchical dynamic loop self-scheduling.

Every task of a communicator calls :func:`dynamic_for` collectively
with the same iteration count and a ``body(lo, hi)`` callback.  The
iteration space is split across nodes (proportional to task counts),
chunked per node by a :class:`~repro.scheduler.policy.SelfSchedPolicy`,
and executed by:

1. **local claims** -- fetch-and-add on the node's packed head/tail
   word (one atomic per chunk);
2. **work stealing** -- when the local queue drains, a
   :class:`~repro.scheduler.stealer.WorkStealer` picks victims
   (randomized, then richest-first from observed counters) and takes
   half their remaining chunks with one CAS;
3. **remote mop-up claims** -- the sub-``min_steal`` tails that are not
   worth a bulk steal are drained chunk-by-chunk with remote
   fetch-and-adds, so termination is a full sweep observing every node
   word drained.

``policy="static"`` is the measured oracle: the same per-node chunk
tables, assigned 1:1 to local tasks with no queue, no windows and no
atomics -- what a static decomposition would have done, with the same
instrumentation so imbalance is comparable.

The body may return a number, which is accounted as that chunk's "work
units" in the loop report (defaults to the iteration count) -- a
deterministic load measure that benchmark c.o.v. assertions can use
where wall-clock busy time is noisy.
"""

from __future__ import annotations

import inspect
from dataclasses import asdict, dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.scheduler.policy import (
    PolicyLike,
    SelfSchedPolicy,
    StaticPolicy,
    make_policy,
)
from repro.scheduler.queue import ChunkQueue, node_chunk_tables
from repro.scheduler.stealer import WorkStealer


def _cov(values: List[float]) -> float:
    """Coefficient of variation (population std / mean; 0 for empty or
    zero-mean samples)."""
    vals = [float(v) for v in values]
    if not vals:
        return 0.0
    mean = sum(vals) / len(vals)
    if mean <= 0.0:
        return 0.0
    var = sum((v - mean) ** 2 for v in vals) / len(vals)
    return (var ** 0.5) / mean


def policy_spec(policy: SelfSchedPolicy) -> str:
    """``name[:arg]``: the arg is printed whenever it differs from that
    policy class's *own* constructor default, so e.g. ``fixed:1`` (pure
    self-scheduling) is never conflated with the default ``fixed:4``
    and a non-default ``guided:4`` keeps its min_chunk in reports."""
    for attr in ("k", "min_chunk"):
        arg = getattr(policy, attr, None)
        if arg is None:
            continue
        param = inspect.signature(type(policy).__init__).parameters.get(attr)
        default = param.default if param is not None else inspect.Parameter.empty
        return policy.name if arg == default else f"{policy.name}:{arg}"
    return policy.name


@dataclass
class TaskLoopStats:
    """One task's accounting for one ``dynamic_for`` loop."""

    rank: int
    node: int
    chunks_local: int = 0
    chunks_stolen: int = 0
    remote_claims: int = 0
    steal_attempts: int = 0
    steal_failures: int = 0
    iterations: int = 0
    work: float = 0.0
    busy_s: float = 0.0
    idle_s: float = 0.0
    finish_s: float = 0.0


@dataclass
class LoopReport:
    """Rank 0's gathered view of one loop (registered on the runtime
    and aggregated by ``rt.loadbalance_metrics()``)."""

    label: str
    policy: str
    n_iters: int
    n_tasks: int
    steal: bool
    rows: List[Dict[str, Any]] = field(default_factory=list)
    finish_cov: float = 0.0
    busy_cov: float = 0.0
    work_cov: float = 0.0
    makespan_s: float = 0.0

    @classmethod
    def from_rows(
        cls, *, label: str, policy: str, n_iters: int, steal: bool,
        rows: List[Dict[str, Any]],
    ) -> "LoopReport":
        return cls(
            label=label,
            policy=policy,
            n_iters=n_iters,
            n_tasks=len(rows),
            steal=steal,
            rows=rows,
            finish_cov=_cov([r["finish_s"] for r in rows]),
            busy_cov=_cov([r["busy_s"] for r in rows]),
            work_cov=_cov([r["work"] for r in rows]),
            makespan_s=max((r["finish_s"] for r in rows), default=0.0),
        )


def _hit(rt: Any, site: str, world_rank: int) -> None:
    if rt.faults is not None:
        rt.faults.hit(site, world_rank)


def dynamic_for(
    ctx: Any,
    n_iters: int,
    body: Callable[[int, int], Any],
    *,
    comm: Optional[Any] = None,
    policy: PolicyLike = "guided",
    steal: bool = True,
    min_steal: int = 2,
    steal_seed: int = 0,
    label: str = "loop",
    register: bool = True,
) -> TaskLoopStats:
    """Collectively execute ``body`` over ``[0, n_iters)`` with dynamic
    self-scheduling; returns this task's :class:`TaskLoopStats` (rank 0
    additionally registers the gathered :class:`LoopReport` on the
    runtime)."""
    rt = ctx.runtime
    comm = ctx.comm_world if comm is None else comm
    pol = make_policy(policy)
    world = comm.world_rank
    stats = TaskLoopStats(rank=comm.rank, node=rt.node_of(world))

    def run_chunk(chunk: Tuple[int, int], t0: float) -> None:
        lo, hi = chunk
        b0 = rt.now()
        ret = body(lo, hi)
        stats.busy_s += rt.now() - b0
        stats.iterations += hi - lo
        if isinstance(ret, (int, float)) and not isinstance(ret, bool):
            stats.work += float(ret)
        else:
            stats.work += float(hi - lo)

    if isinstance(pol, StaticPolicy):
        # The oracle: same per-node chunk tables, assigned 1:1 to the
        # node's tasks in rank order -- no queue, no atomics.
        layout, tables = node_chunk_tables(rt, comm, n_iters, pol)
        ranks = layout[stats.node]
        my_idx = ranks.index(comm.rank)
        my_chunks = tables[stats.node][my_idx:my_idx + 1]
        comm.barrier()
        t0 = rt.now()
        for chunk in my_chunks:
            stats.chunks_local += 1
            run_chunk(chunk, t0)
        stats.finish_s = rt.now() - t0
        comm.barrier()
        total = rt.now() - t0
    else:
        queue = ChunkQueue(ctx, comm, n_iters, pol)
        stealer = WorkStealer(queue, seed=steal_seed)
        comm.barrier()
        t0 = rt.now()
        while True:
            _hit(rt, "sched.claim", world)
            chunk = queue.claim()
            if chunk is not None:
                stats.chunks_local += 1
                run_chunk(chunk, t0)
                continue
            progressed = False
            if steal:
                # One sweep doubles as the termination check: every
                # steal read observes the victim's packed word, and a
                # non-empty-but-unstealable tail is mopped up with a
                # remote claim in place -- no second sweep (on a GIL'd
                # host every atomic is serialised Python, so the
                # drained-queue storm at loop end costs per-op).
                for victim in stealer.victims():
                    _hit(rt, "sched.steal", world)
                    stats.steal_attempts += 1
                    stolen, seen = queue.steal(victim, min_steal=min_steal)
                    stealer.observe(
                        victim, max(seen - len(stolen), 0)
                    )
                    if stolen:
                        # run one stolen chunk; donate the rest back
                        # onto our own queue so the batch stays visible
                        # to peers and further thieves (a private stash
                        # would re-create the straggler)
                        rest = stolen[1:]
                        if rest and queue.donate(rest):
                            rest = []
                        stats.chunks_stolen += 1 + len(rest)
                        run_chunk(stolen[0], t0)
                        for chunk in rest:
                            run_chunk(chunk, t0)
                        progressed = True
                        break
                    stats.steal_failures += 1
                    if seen > 0:
                        # sub-min_steal tail (or a lost CAS race):
                        # drain it chunk-by-chunk right here
                        _hit(rt, "sched.claim", world)
                        chunk = queue.claim(victim)
                        if chunk is not None:
                            stats.remote_claims += 1
                            run_chunk(chunk, t0)
                            progressed = True
                            break
            else:
                # no stealing: remote mop-up claims are the only way to
                # help other nodes, one full sweep per round
                for node in queue.nodes:
                    if node == queue.node:
                        continue
                    _hit(rt, "sched.claim", world)
                    chunk = queue.claim(node)
                    if chunk is not None:
                        stats.remote_claims += 1
                        run_chunk(chunk, t0)
                        progressed = True
                        break
            if not progressed:
                break       # every node word observed drained
        stats.finish_s = rt.now() - t0
        comm.barrier()
        total = rt.now() - t0
        queue.close()

    stats.idle_s = max(total - stats.busy_s, 0.0)
    rows = comm.gather(asdict(stats), root=0)
    if comm.rank == 0 and register:
        rt.register_loop_report(LoopReport.from_rows(
            label=label, policy=policy_spec(pol), n_iters=int(n_iters),
            steal=bool(steal) and not isinstance(pol, StaticPolicy),
            rows=list(rows),
        ))
    return stats


__all__ = ["LoopReport", "TaskLoopStats", "dynamic_for", "policy_spec"]
