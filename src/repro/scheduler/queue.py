"""Node-level chunk queues claimed with one-sided atomics.

One :class:`ChunkQueue` materialises a loop's iteration space as
per-node queues:

* the **chunk descriptor table** of each node lives in HLS node-scoped
  storage (one copy per node on runtimes with a shared node address
  space, filled inside a ``single`` block) and is exposed by the node's
  leader rank through an RMA window so thieves can fetch stolen
  descriptors with ``Win.get``;
* the **head/tail counters** of each node are packed into a single
  ``uint64`` word (head in the low 32 bits, tail in the high 32 bits)
  in a second RMA window.

The packing is what makes the protocol race-free with exactly the two
atomics the runtime provides:

* a local (or remote) **claim** is one ``fetch_and_op(+1)`` on the
  packed word -- it increments the head and returns the old word, so
  the claimant learns *both* the chunk index it owns and the tail it
  must beat, in one atomic read-modify-write.  The claim is valid iff
  ``head < tail``; a failed claim merely leaves the head inflated past
  the tail, which every consumer treats as "drained".
* a **steal** takes half the victim's remaining chunks with a single
  ``compare_and_swap`` that rewrites the tail half of the word.  The
  expected value includes the head half, so *any* interleaved claim
  (which moves the head) fails the CAS and the thief retries elsewhere
  -- no chunk can be both claimed locally and stolen.

Exactly-once then follows: fetch-and-add hands out distinct head
values below the observed tail, CAS serialises every tail movement,
and a successful steal's new tail never drops below the head it
validated against.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.hls import HLSProgram
from repro.hls.program import HLSHandle
from repro.runtime.rma import Win
from repro.scheduler.policy import SelfSchedPolicy

_HEAD_MASK = (1 << 32) - 1

#: guards first-touch creation of the per-runtime layout cache
_CACHE_LOCK = threading.Lock()


def pack_counters(head: int, tail: int) -> np.uint64:
    """head in the low 32 bits, tail in the high 32 bits."""
    return np.uint64((int(tail) << 32) | (int(head) & _HEAD_MASK))


def unpack_counters(word: Any) -> Tuple[int, int]:
    w = int(word)
    return w & _HEAD_MASK, w >> 32


def _policy_key(policy: SelfSchedPolicy) -> Tuple:
    return (
        type(policy).__name__,
        getattr(policy, "k", None),
        getattr(policy, "min_chunk", None),
    )


def node_layout(rt: Any, comm: Any) -> Dict[int, List[int]]:
    """node id -> sorted comm ranks pinned there (cached per runtime:
    at 8k+ tasks recomputing this per task would be O(n_tasks^2))."""
    with _CACHE_LOCK:
        cache = rt.__dict__.setdefault("_sched_layout_cache", {})
        key = ("layout", comm.context)
        hit = cache.get(key)
        if hit is None:
            nodes: Dict[int, List[int]] = {}
            for r in range(comm.size):
                nodes.setdefault(rt.node_of(comm.to_world(r)), []).append(r)
            hit = dict(sorted(nodes.items()))
            cache[key] = hit
    return hit


def node_chunk_tables(
    rt: Any, comm: Any, n_iters: int, policy: SelfSchedPolicy
) -> Tuple[Dict[int, List[int]], Dict[int, List[Tuple[int, int]]]]:
    """Deterministic pure function of (machine, comm, n_iters, policy):
    the per-node chunk tables every task -- and e.g. an assembling rank
    0 that needs to know all chunk ranges -- can recompute identically.

    The iteration space is split across nodes proportionally to their
    task counts (exact, largest-remainder-free prefix arithmetic), then
    each node's range is chunked by the policy for its local worker
    count."""
    layout = node_layout(rt, comm)
    with _CACHE_LOCK:
        cache = rt.__dict__.setdefault("_sched_layout_cache", {})
        key = ("tables", comm.context, int(n_iters), _policy_key(policy))
        hit = cache.get(key)
        if hit is None:
            total_tasks = comm.size
            tables: Dict[int, List[Tuple[int, int]]] = {}
            start = 0
            seen_tasks = 0
            for node, ranks in layout.items():
                seen_tasks += len(ranks)
                end = (int(n_iters) * seen_tasks) // total_tasks
                tables[node] = [
                    (lo + start, hi + start)
                    for lo, hi in policy.chunks(end - start, len(ranks))
                ]
                start = end
            hit = tables
            cache[key] = hit
    return layout, hit


class ChunkQueue:
    """One task's handle on a loop's per-node chunk queues.

    Construction is collective over ``comm`` (it creates two RMA
    windows); every task gets its own handle sharing the windows."""

    def __init__(
        self, ctx: Any, comm: Any, n_iters: int, policy: SelfSchedPolicy
    ) -> None:
        rt = ctx.runtime
        self.runtime = rt
        self.comm = comm
        self.n_iters = int(n_iters)
        self.policy = policy
        self.node = rt.node_of(comm.to_world(comm.rank))
        layout, tables = node_chunk_tables(rt, comm, n_iters, policy)
        self.nodes: List[int] = list(layout)
        self._tables = tables
        self._leader = {node: ranks[0] for node, ranks in layout.items()}
        self._n_chunks = {node: len(chks) for node, chks in tables.items()}
        max_chunks = max(max(self._n_chunks.values(), default=0), 1)
        # Extra descriptor rows beyond the initial tables: thieves
        # donate stolen chunks back onto their own queue (see donate),
        # and failed claims inflate the head past the tail, so the
        # donated region starts at max(head, tail) and creeps upward.
        self._capacity = 2 * max_chunks + 64
        max_chunks = self._capacity

        # Chunk descriptor table in HLS node-scoped storage: one copy
        # per node where the address space allows sharing, a private
        # (value-identical) copy per task otherwise (process backend).
        # The program object itself must be shared across the loop's
        # tasks (scope instances live inside one program), so rank 0
        # builds it and publishes it by reference.
        if comm.rank == 0:
            prog: Optional[HLSProgram] = HLSProgram(
                rt, enabled=rt.shared_node_address_space
            )
            prog.declare(
                "sched_chunks", shape=(max_chunks, 2), dtype=np.int64,
                scope="node",
            )
        else:
            prog = None
        prog = comm._coll.exchange(comm.rank, prog)[0]
        self._prog = prog
        # a direct handle: ctx.hls stays owned by the application's own
        # HLS program (attach() would reuse it)
        h = HLSHandle(self._prog, ctx)
        if h.single_enter("sched_chunks"):
            try:
                table = h["sched_chunks"]
                table[...] = -1
                mine = tables[self.node]
                if mine:
                    table[: len(mine), :] = np.asarray(mine, dtype=np.int64)
            finally:
                h.single_done("sched_chunks")
        self._table = h["sched_chunks"]

        # Counters window: every rank exposes one packed uint64 word;
        # only node-leader words are ever used.  The leader initialises
        # its word before Win.create's trailing barrier publishes it.
        counter = np.zeros(1, dtype=np.uint64)
        if comm.rank == self._leader[self.node]:
            counter[0] = pack_counters(0, self._n_chunks[self.node])
        self._counter_buf = counter
        self._cwin = Win.create(comm, counter)
        # Descriptor window: leaders expose their node's table (a view
        # into the HLS storage -- remote gets read the real thing).
        if comm.rank == self._leader[self.node]:
            flat = self._table.reshape(-1)
        else:
            flat = np.zeros(0, dtype=np.int64)
        self._kwin = Win.create(comm, flat)
        # Passive-target epochs for the whole loop.
        self._cwin.lock_all()
        self._kwin.lock_all()
        self._closed = False

    # ------------------------------------------------------------ protocol
    def claim(self, node: Optional[int] = None) -> Optional[Tuple[int, int]]:
        """Atomically claim the next chunk of ``node``'s queue (own node
        by default); None when that queue is drained."""
        node = self.node if node is None else node
        self.runtime.checkpoint()
        old = self._cwin.fetch_and_op(
            np.uint64(1), target=self._leader[node]
        )
        head, tail = unpack_counters(old)
        if head >= tail:
            return None
        return self._descriptor(node, head)

    def steal(
        self, victim: int, *, min_steal: int = 2
    ) -> Tuple[List[Tuple[int, int]], int]:
        """Try to steal half of ``victim``'s remaining chunks with one
        CAS on the packed word.  Returns ``(chunks, remaining_seen)``;
        an empty list means the victim was too poor or a concurrent
        claim/steal invalidated the read (the caller picks another
        victim)."""
        leader = self._leader[victim]
        self.runtime.checkpoint()
        word = self._cwin.fetch_and_op(np.uint64(0), target=leader)
        head, tail = unpack_counters(word)
        remaining = tail - head
        if remaining < max(min_steal, 1):
            return [], max(remaining, 0)
        k = remaining // 2
        old = self._cwin.compare_and_swap(
            word, pack_counters(head, tail - k), target=leader
        )
        if int(old) != int(word):
            return [], max(remaining, 0)
        return (
            [self._descriptor(victim, i) for i in range(tail - k, tail)],
            remaining,
        )

    def remaining(self, node: Optional[int] = None) -> int:
        """Unclaimed chunks on ``node``'s queue (atomic snapshot)."""
        node = self.node if node is None else node
        word = self._cwin.fetch_and_op(
            np.uint64(0), target=self._leader[node]
        )
        head, tail = unpack_counters(word)
        return max(tail - head, 0)

    def donate(self, chunks: List[Tuple[int, int]]) -> bool:
        """Re-expose ``chunks`` on this task's *own* node queue so peers
        (and further thieves) can claim them -- the re-share step that
        keeps a thief's stolen batch from becoming a private stash no
        one can balance against.

        The descriptors are put into the leader's table beyond both
        counters, then one CAS pushes the tail over them; a concurrent
        claim moves the head and fails the CAS, and the unexposed rows
        are simply rewritten at the new base on retry.  Returns False
        (caller keeps the chunks) when the descriptor capacity is
        exhausted."""
        if not chunks:
            return True
        leader = self._leader[self.node]
        desc = np.asarray(chunks, dtype=np.int64).reshape(-1)
        while True:
            self.runtime.checkpoint()
            word = self._cwin.fetch_and_op(np.uint64(0), target=leader)
            head, tail = unpack_counters(word)
            base = max(head, tail)
            if base + len(chunks) > self._capacity:
                return False
            self._kwin.put(desc, leader, target_disp=2 * base)
            old = self._cwin.compare_and_swap(
                word, pack_counters(head, base + len(chunks)), target=leader
            )
            if int(old) == int(word):
                return True

    def _descriptor(self, node: int, idx: int) -> Tuple[int, int]:
        # own-node reads hit the local HLS table only for the initial
        # rows: donated rows live in the leader's exposed copy, which is
        # the same storage only when the node address space is shared
        if node == self.node and idx < self._n_chunks[node]:
            row = self._table[idx]
            return int(row[0]), int(row[1])
        pair = self._kwin.get(
            self._leader[node], count=2, target_disp=2 * idx
        )
        return int(pair[0]), int(pair[1])

    # ------------------------------------------------------------- cleanup
    def close(self) -> None:
        """Collective: close epochs and free both windows."""
        if self._closed:
            return
        self._closed = True
        self._cwin.unlock_all()
        self._kwin.unlock_all()
        self._cwin.free()
        self._kwin.free()


__all__ = [
    "ChunkQueue",
    "node_chunk_tables",
    "node_layout",
    "pack_counters",
    "unpack_counters",
]
