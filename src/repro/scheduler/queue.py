"""Node-level chunk queues claimed with one-sided atomics.

One :class:`ChunkQueue` materialises a loop's iteration space as
per-node queues:

* the **chunk descriptor table** of each node lives in HLS node-scoped
  storage (one copy per node on runtimes with a shared node address
  space, filled inside a ``single`` block) and is exposed by the node's
  leader rank through an RMA window so thieves can fetch stolen
  descriptors with ``Win.get``;
* the **head/tail counters** of each node are packed into a single
  ``uint64`` word (head in the low 32 bits, tail in the high 32 bits)
  in a second RMA window, next to a **donation allocation cursor**
  word.

The protocol's core invariant: a descriptor row is written at most
once, *before* the packed word ever exposes it (``row < tail``), and
never rewritten -- so an exposed row may be read by anyone without
further synchronisation.  Three operations move the counters:

* a local (or remote) **claim** is one ``fetch_and_op(+1)`` on the
  packed word -- it increments the head and returns the old word, so
  the claimant learns *both* the chunk index it owns and the tail it
  must beat, in one atomic read-modify-write.  The claim is valid iff
  ``head < tail``; a failed claim merely leaves the head inflated past
  the tail, which every consumer treats as "drained".
* a **steal** takes half the victim's remaining chunks off the *head*
  end: the thief first copies rows ``[head, head+k)`` (safe -- exposed
  rows are immutable), then publishes the theft with one
  ``compare_and_swap`` moving the head to ``head+k``.  Any interleaved
  claim moves the head and fails the CAS, so no chunk can be both
  claimed and stolen; and because the copy precedes the CAS, the thief
  never reads a row after giving anyone else a reason to touch it.
* a **donation** re-exposes chunks in three steps: reserve fresh rows
  ``[b, b+n)`` with a bounded CAS on the allocation cursor (which only
  ever grows and is never reused, so two donors can never write the
  same rows); put the descriptors; then expose them by CASing the tail
  from exactly ``b`` to ``b+n``.  Donors thus expose in reservation
  order and the tail never covers an unwritten row.  A head inflated
  past the tail by failed claims is reset to ``b`` in the same CAS, so
  donated work cannot hide behind the inflation.

Exactly-once then follows: fetch-and-add hands out distinct head
values below the observed tail, every tail movement is a serialised
CAS, and no counter word can recur (the tail is strictly monotonic;
the head only drops in a donation's expose, which also grows the
tail), so no CAS can succeed against stale state (no ABA).
"""

from __future__ import annotations

import threading
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.hls import HLSProgram
from repro.hls.program import HLSHandle
from repro.runtime.abort import note_abort
from repro.runtime.errors import AbortError, DeadlockError
from repro.runtime.rma import Win
from repro.scheduler.policy import SelfSchedPolicy

_HEAD_MASK = (1 << 32) - 1

#: element displacements in the per-leader counters window
_WORD = 0       # packed head/tail
_ALLOC = 1      # donation allocation cursor (monotonic, never reused)

#: guards first-touch creation of the per-runtime layout cache
_CACHE_LOCK = threading.Lock()


def pack_counters(head: int, tail: int) -> np.uint64:
    """head in the low 32 bits, tail in the high 32 bits."""
    return np.uint64((int(tail) << 32) | (int(head) & _HEAD_MASK))


def unpack_counters(word: Any) -> Tuple[int, int]:
    w = int(word)
    return w & _HEAD_MASK, w >> 32


def _policy_key(policy: SelfSchedPolicy) -> Tuple:
    return (
        type(policy).__name__,
        getattr(policy, "k", None),
        getattr(policy, "min_chunk", None),
    )


def node_layout(rt: Any, comm: Any) -> Dict[int, List[int]]:
    """node id -> sorted comm ranks pinned there (cached per runtime:
    at 8k+ tasks recomputing this per task would be O(n_tasks^2))."""
    with _CACHE_LOCK:
        cache = rt.__dict__.setdefault("_sched_layout_cache", {})
        key = ("layout", comm.context)
        hit = cache.get(key)
        if hit is None:
            nodes: Dict[int, List[int]] = {}
            for r in range(comm.size):
                nodes.setdefault(rt.node_of(comm.to_world(r)), []).append(r)
            hit = dict(sorted(nodes.items()))
            cache[key] = hit
    return hit


def node_chunk_tables(
    rt: Any, comm: Any, n_iters: int, policy: SelfSchedPolicy
) -> Tuple[Dict[int, List[int]], Dict[int, List[Tuple[int, int]]]]:
    """Deterministic pure function of (machine, comm, n_iters, policy):
    the per-node chunk tables every task -- and e.g. an assembling rank
    0 that needs to know all chunk ranges -- can recompute identically.

    The iteration space is split across nodes proportionally to their
    task counts (exact, largest-remainder-free prefix arithmetic), then
    each node's range is chunked by the policy for its local worker
    count."""
    layout = node_layout(rt, comm)
    with _CACHE_LOCK:
        cache = rt.__dict__.setdefault("_sched_layout_cache", {})
        key = ("tables", comm.context, int(n_iters), _policy_key(policy))
        hit = cache.get(key)
        if hit is None:
            total_tasks = comm.size
            tables: Dict[int, List[Tuple[int, int]]] = {}
            start = 0
            seen_tasks = 0
            for node, ranks in layout.items():
                seen_tasks += len(ranks)
                end = (int(n_iters) * seen_tasks) // total_tasks
                tables[node] = [
                    (lo + start, hi + start)
                    for lo, hi in policy.chunks(end - start, len(ranks))
                ]
                start = end
            hit = tables
            cache[key] = hit
    return layout, hit


class ChunkQueue:
    """One task's handle on a loop's per-node chunk queues.

    Construction is collective over ``comm`` (it creates two RMA
    windows); every task gets its own handle sharing the windows."""

    def __init__(
        self, ctx: Any, comm: Any, n_iters: int, policy: SelfSchedPolicy
    ) -> None:
        rt = ctx.runtime
        self.runtime = rt
        self.comm = comm
        self.n_iters = int(n_iters)
        self.policy = policy
        self.node = rt.node_of(comm.to_world(comm.rank))
        layout, tables = node_chunk_tables(rt, comm, n_iters, policy)
        self.nodes: List[int] = list(layout)
        self._tables = tables
        self._leader = {node: ranks[0] for node, ranks in layout.items()}
        self._n_chunks = {node: len(chks) for node, chks in tables.items()}
        max_chunks = max(max(self._n_chunks.values(), default=0), 1)
        # Extra descriptor rows beyond the initial tables hold
        # donations (see donate): rows are handed out by a monotonic
        # allocation cursor and never reused, so generous slack keeps
        # late donations succeeding (2 int64 per row -- cheap).
        self._capacity = 4 * max_chunks + 64

        # Chunk descriptor table in HLS node-scoped storage: one copy
        # per node where the address space allows sharing, a private
        # (value-identical) copy per task otherwise (process backend).
        # The program object itself must be shared across the loop's
        # tasks (scope instances live inside one program), so rank 0
        # builds it and publishes it by reference.
        if comm.rank == 0:
            prog: Optional[HLSProgram] = HLSProgram(
                rt, enabled=rt.shared_node_address_space
            )
            prog.declare(
                "sched_chunks", shape=(self._capacity, 2), dtype=np.int64,
                scope="node",
            )
        else:
            prog = None
        prog = comm._coll.exchange(comm.rank, prog)[0]
        self._prog = prog
        # a direct handle: ctx.hls stays owned by the application's own
        # HLS program (attach() would reuse it)
        h = HLSHandle(self._prog, ctx)
        table = h["sched_chunks"]
        # Fill the initial rows WITHOUT an HLS ``single``: a node-scoped
        # single barriers every runtime task pinned to the node, but
        # only members of ``comm`` construct this queue, so any
        # sub-communicator would hang against the node's other tasks.
        # Instead comm's node-leader rank fills the node's shared copy
        # (every task fills its own private, value-identical copy when
        # the address space is not shared), and the collective
        # Win.create barriers below publish the rows before any task's
        # first claim.
        if not self._prog.enabled or comm.rank == self._leader[self.node]:
            table[...] = -1
            mine = tables[self.node]
            if mine:
                table[: len(mine), :] = np.asarray(mine, dtype=np.int64)
        self._table = table

        # Counters window: every rank exposes two uint64 words -- the
        # packed head/tail word and the donation allocation cursor;
        # only node-leader words are ever used.  The leader initialises
        # its words before Win.create's trailing barrier publishes them.
        counter = np.zeros(2, dtype=np.uint64)
        if comm.rank == self._leader[self.node]:
            counter[_WORD] = pack_counters(0, self._n_chunks[self.node])
            counter[_ALLOC] = np.uint64(self._n_chunks[self.node])
        self._counter_buf = counter
        self._cwin = Win.create(comm, counter)
        # Descriptor window: leaders expose their node's table (a view
        # into the HLS storage -- remote gets read the real thing).
        if comm.rank == self._leader[self.node]:
            flat = self._table.reshape(-1)
        else:
            flat = np.zeros(0, dtype=np.int64)
        self._kwin = Win.create(comm, flat)
        # Passive-target epochs for the whole loop.
        self._cwin.lock_all()
        self._kwin.lock_all()
        self._closed = False

    # ------------------------------------------------------------ protocol
    def claim(self, node: Optional[int] = None) -> Optional[Tuple[int, int]]:
        """Atomically claim the next chunk of ``node``'s queue (own node
        by default); None when that queue is drained."""
        node = self.node if node is None else node
        self.runtime.checkpoint()
        old = self._cwin.fetch_and_op(
            np.uint64(1), target=self._leader[node]
        )
        head, tail = unpack_counters(old)
        if head >= tail:
            return None
        return self._descriptor(node, head)

    def steal(
        self, victim: int, *, min_steal: int = 2
    ) -> Tuple[List[Tuple[int, int]], int]:
        """Try to steal half of ``victim``'s remaining chunks off the
        head end with one CAS on the packed word.  Returns ``(chunks,
        remaining_seen)``; an empty list means the victim was too poor
        or a concurrent claim/steal invalidated the read (the caller
        picks another victim)."""
        leader = self._leader[victim]
        self.runtime.checkpoint()
        word = self._cwin.fetch_and_op(np.uint64(0), target=leader)
        head, tail = unpack_counters(word)
        remaining = tail - head
        if remaining < max(min_steal, 1):
            return [], max(remaining, 0)
        k = remaining // 2
        # Copy the descriptors BEFORE the CAS: rows below the tail are
        # immutable once exposed, so the copy cannot tear, and nothing
        # is ever read from the table after the theft is published --
        # a concurrent donation can never clobber what the thief runs.
        # If the CAS loses, the copies are simply discarded.
        rows = self._kwin.get(leader, count=2 * k, target_disp=2 * head)
        old = self._cwin.compare_and_swap(
            word, pack_counters(head + k, tail), target=leader
        )
        if int(old) != int(word):
            return [], max(remaining, 0)
        return (
            [(int(rows[2 * i]), int(rows[2 * i + 1])) for i in range(k)],
            remaining,
        )

    def remaining(self, node: Optional[int] = None) -> int:
        """Unclaimed chunks on ``node``'s queue (atomic snapshot)."""
        node = self.node if node is None else node
        word = self._cwin.fetch_and_op(
            np.uint64(0), target=self._leader[node]
        )
        head, tail = unpack_counters(word)
        return max(tail - head, 0)

    def donate(self, chunks: List[Tuple[int, int]]) -> bool:
        """Re-expose ``chunks`` on this task's *own* node queue so peers
        (and further thieves) can claim them -- the re-share step that
        keeps a thief's stolen batch from becoming a private stash no
        one can balance against.

        Three steps keep descriptor publication atomic with counter
        movement: (1) reserve fresh rows with a bounded CAS on the
        allocation cursor, which only ever grows -- so no two donors
        (nor a donor and the rows a thief has copied) can ever share
        rows; (2) put the descriptors into the still-unexposed rows;
        (3) expose them by CASing the tail from exactly the reserved
        base, so donors expose in reservation order and the tail never
        covers an unwritten row.  Returns False (caller keeps the
        chunks) when the descriptor capacity is exhausted."""
        if not chunks:
            return True
        leader = self._leader[self.node]
        n = len(chunks)
        desc = np.asarray(chunks, dtype=np.int64).reshape(-1)
        guard = self._spin_guard("sched donate")
        while True:
            guard()
            alloc = int(self._cwin.fetch_and_op(
                np.uint64(0), target=leader, target_disp=_ALLOC
            ))
            if alloc + n > self._capacity:
                return False
            old = self._cwin.compare_and_swap(
                np.uint64(alloc), np.uint64(alloc + n),
                target=leader, target_disp=_ALLOC,
            )
            if int(old) == alloc:
                base = alloc
                break
        self._kwin.put(desc, leader, target_disp=2 * base)
        while True:
            guard()
            word = self._cwin.fetch_and_op(np.uint64(0), target=leader)
            head, tail = unpack_counters(word)
            if tail != base:
                continue    # an earlier reservation is not yet exposed
            # a head inflated past the tail by failed claims is reset
            # to base here, so the donated chunks stay claimable
            old = self._cwin.compare_and_swap(
                word, pack_counters(min(head, base), base + n),
                target=leader,
            )
            if int(old) == int(word):
                return True

    def _spin_guard(self, what: str) -> Any:
        """Abort- and deadline-aware tick for the donate retry loops
        (a cooperative scheduling point plus the runtime's watchdog)."""
        rt = self.runtime
        deadline = rt.now() + rt.timeout
        def tick() -> None:
            rt.checkpoint()
            if rt.abort_flag.is_set():
                note_abort(rt.abort_flag)
                raise AbortError(f"job aborted during {what}")
            if rt.now() >= deadline:
                raise DeadlockError(
                    f"{what} timed out after {rt.timeout}s"
                )
        return tick

    def _descriptor(self, node: int, idx: int) -> Tuple[int, int]:
        # own-node reads hit the local HLS table only for the initial
        # rows: donated rows live in the leader's exposed copy, which is
        # the same storage only when the node address space is shared
        if node == self.node and idx < self._n_chunks[node]:
            row = self._table[idx]
            return int(row[0]), int(row[1])
        pair = self._kwin.get(
            self._leader[node], count=2, target_disp=2 * idx
        )
        return int(pair[0]), int(pair[1])

    # ------------------------------------------------------------- cleanup
    def close(self) -> None:
        """Collective: close epochs and free both windows."""
        if self._closed:
            return
        self._closed = True
        self._cwin.unlock_all()
        self._kwin.unlock_all()
        self._cwin.free()
        self._kwin.free()


__all__ = [
    "ChunkQueue",
    "node_chunk_tables",
    "node_layout",
    "pack_counters",
    "unpack_counters",
]
