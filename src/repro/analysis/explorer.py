"""Schedule exploration: brute-force validation of the §III conditions.

The coherent-read conditions are justified in the paper by a schedule
argument: "if one of these two conditions is not satisfied, there
exists a schedule compatible with the partial order defined by the
synchronizations of the MPI program in which the delinquent write
happens just before the read operation that will thus return a wrong
value."

:func:`explore` makes that argument executable: it samples random
linearizations of a trace compatible with the happens-before partial
order, replays the accesses of one variable against a single shared
cell (what HLS storage would be), and reports every read that observed
a value different from the one the original (private-copies) execution
recorded.  A variable the checker deems *eligible without
synchronization* must show no violation under any schedule; the
property tests drive both directions.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Set, Tuple

from repro.analysis.events import Event, EventKind, Trace
from repro.analysis.happens_before import HappensBefore


@dataclass
class Violation:
    """One read that observed a wrong value under some schedule."""

    read: Event
    observed: Hashable
    schedule_index: int


def random_linearization(
    hb: HappensBefore, rng: random.Random
) -> List[Event]:
    """One random topological order of the trace's events."""
    graph = hb.graph
    indeg: Dict = {n: 0 for n in graph.nodes}
    for _u, v in graph.edges:
        indeg[v] += 1
    ready = [n for n, d in indeg.items() if d == 0]
    order: List[Event] = []
    while ready:
        i = rng.randrange(len(ready))
        node = ready.pop(i)
        if not (isinstance(node, tuple) and node and node[0] == "episode"):
            task, index = node
            order.append(hb.trace.events[task][index])
        for succ in graph.successors(node):
            indeg[succ] -= 1
            if indeg[succ] == 0:
                ready.append(succ)
    return order


def replay(
    order: List[Event],
    var: str,
    *,
    initial_value: Optional[Hashable] = None,
) -> List[Tuple[Event, Hashable]]:
    """Replay one schedule on a single shared copy of ``var``;
    returns the (read, observed value) pairs."""
    shared: Hashable = initial_value
    seen: List[Tuple[Event, Hashable]] = []
    for ev in order:
        if ev.var != var:
            continue
        if ev.kind is EventKind.WRITE:
            shared = ev.value
        elif ev.kind is EventKind.READ:
            seen.append((ev, shared))
    return seen


def explore(
    trace: Trace,
    var: str,
    *,
    initial_value: Optional[Hashable] = None,
    samples: int = 50,
    seed: int = 0,
) -> List[Violation]:
    """Sample ``samples`` random legal schedules; return all observed
    read violations (reads seeing a value other than recorded)."""
    hb = HappensBefore(trace)
    rng = random.Random(seed)
    violations: List[Violation] = []
    for s in range(samples):
        order = random_linearization(hb, rng)
        for read, observed in replay(order, var, initial_value=initial_value):
            if observed != read.value:
                violations.append(
                    Violation(read=read, observed=observed, schedule_index=s)
                )
    return violations


__all__ = ["Violation", "random_linearization", "replay", "explore"]
