"""Automatic detection of HLS-eligible variables.

The paper's future work (section VII): "One could retrieve during one
execution of the code, all memory accesses to global variables
augmented with the synchronizations induced by the MPI calls.
Efficient algorithms based on the formal definition given in section
III could then be used to detect variables that can use HLS without
additional synchronizations and to detect where to add synchronizations
for the others."

:func:`detect` classifies every global variable of a trace as

* ``ELIGIBLE`` -- all reads coherent (III-B): mark HLS, done;
* ``ELIGIBLE_WITH_SINGLES`` -- reads salvageable (condition 3) *and*
  every task performs the same write sequence (same count, same values,
  same order), so each write can be wrapped in a ``single`` (III-C),
  *and* the implied barriers do not conflict with existing
  synchronisation (no cycle in the extended precedence graph);
* ``INELIGIBLE`` -- otherwise.

For eligible-with-singles variables the report carries concrete pragma
suggestions (one ``single`` per write position).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Tuple

from repro.analysis.coherence import VariableCoherence, check_variable
from repro.analysis.events import Event, EventKind, Trace
from repro.analysis.happens_before import HappensBefore


class Eligibility(enum.Enum):
    ELIGIBLE = "eligible"
    ELIGIBLE_WITH_SINGLES = "eligible_with_singles"
    INELIGIBLE = "ineligible"


@dataclass(frozen=True)
class VariableReport:
    """Detection result for one variable."""

    var: str
    status: Eligibility
    coherence: VariableCoherence
    reason: str
    suggested_pragmas: Tuple[str, ...] = ()


def _same_write_sequences(trace: Trace, var: str) -> Tuple[bool, str]:
    """Does every task that writes ``var`` write the same value sequence?

    Per section III-C this is the SPMD pattern that makes the
    single-wrapping transformation applicable.  Tasks that never touch
    the variable don't disqualify it (they simply take part in the
    single's barrier)."""
    sequences: Dict[int, List[Hashable]] = {}
    for ev in trace.all_events():
        if ev.kind is EventKind.WRITE and ev.var == var:
            sequences.setdefault(ev.task, []).append(ev.value)
    if not sequences:
        return True, "no writes"
    seqs = list(sequences.values())
    first = seqs[0]
    for s in seqs[1:]:
        if s != first:
            return False, (
                f"write sequences differ across tasks "
                f"({len(first)} vs {len(s)} writes or different values)"
            )
    writers = set(sequences)
    if writers != set(range(trace.n_tasks)):
        return False, (
            f"only tasks {sorted(writers)} write; the single transformation "
            f"needs every task to execute the same write statements"
        )
    return True, "identical write sequences on all tasks"


def _single_insertion_conflicts(
    hb: HappensBefore, trace: Trace, var: str
) -> Optional[str]:
    """Would wrapping each k-th write in a single/barrier conflict with
    existing synchronisation?

    Wrapping the k-th writes of all tasks in one ``single`` orders
    "everything up to and including write k" before "everything after
    write k" across tasks.  That is impossible -- a cycle in the
    precedence graph -- iff some task's k-th write already *succeeds*
    another task's j-th write with j > k (the existing order crosses
    the proposed barrier in the wrong direction)."""
    per_task: Dict[int, List[Event]] = {}
    for ev in trace.all_events():
        if ev.kind is EventKind.WRITE and ev.var == var:
            per_task.setdefault(ev.task, []).append(ev)
    tasks = sorted(per_task)
    for p in tasks:
        for q in tasks:
            if p == q:
                continue
            for k, wp in enumerate(per_task[p]):
                for j, wq in enumerate(per_task[q]):
                    if j > k and hb.precedes(wq, wp):
                        return (
                            f"write #{j} of task {q} already precedes write "
                            f"#{k} of task {p}; inserting singles would "
                            f"create a cycle"
                        )
    return None


def detect_variable(
    hb: HappensBefore,
    trace: Trace,
    var: str,
    *,
    initial_value: Optional[Hashable] = None,
    scope: str = "node",
) -> VariableReport:
    """Classify one variable (see module docstring)."""
    coh = check_variable(hb, trace, var, initial_value=initial_value)
    if coh.eligible_without_sync:
        return VariableReport(
            var=var,
            status=Eligibility.ELIGIBLE,
            coherence=coh,
            reason="all reads coherent (conditions 1 and 2)",
            suggested_pragmas=(f"#pragma hls {scope}({var})",),
        )
    if not coh.salvageable:
        bad = coh.incoherent_reads[0]
        return VariableReport(
            var=var,
            status=Eligibility.INELIGIBLE,
            coherence=coh,
            reason=(
                f"read {bad.read} violates condition 3: no candidate write "
                f"holds its value"
            ),
        )
    same, why = _same_write_sequences(trace, var)
    if not same:
        return VariableReport(
            var=var,
            status=Eligibility.INELIGIBLE,
            coherence=coh,
            reason=f"condition 3 holds but {why}",
        )
    conflict = _single_insertion_conflicts(hb, trace, var)
    if conflict is not None:
        return VariableReport(
            var=var,
            status=Eligibility.INELIGIBLE,
            coherence=coh,
            reason=conflict,
        )
    n_writes = len(trace.writes(var)) // max(1, trace.n_tasks)
    pragmas = [f"#pragma hls {scope}({var})"]
    pragmas += [
        f"#pragma hls single({var})  # around write #{k}" for k in range(n_writes)
    ]
    return VariableReport(
        var=var,
        status=Eligibility.ELIGIBLE_WITH_SINGLES,
        coherence=coh,
        reason=why,
        suggested_pragmas=tuple(pragmas),
    )


def detect(
    trace: Trace,
    *,
    initial_values: Optional[Dict[str, Hashable]] = None,
    scope: str = "node",
) -> Dict[str, VariableReport]:
    """Classify every global variable accessed in the trace."""
    hb = HappensBefore(trace)
    init = initial_values or {}
    return {
        var: detect_variable(
            hb, trace, var, initial_value=init.get(var), scope=scope
        )
        for var in trace.variables()
    }


__all__ = ["Eligibility", "VariableReport", "detect", "detect_variable"]
