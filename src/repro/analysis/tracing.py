"""Live trace recording from a running MPI job.

Install a :class:`Tracer` on a runtime (``runtime.tracer = tracer``)
before ``run()`` and it collects the synchronisation events (sends,
receives, collectives) automatically through the runtime's hooks.
Variable accesses are recorded by the application through
:meth:`Tracer.read` / :meth:`Tracer.write` -- the stand-in for the
binary instrumentation the paper's future work assumes.

The recorded :class:`~repro.analysis.events.Trace` feeds
:func:`~repro.analysis.detector.detect` to propose HLS pragmas.
"""

from __future__ import annotations

import threading
from typing import Any, Hashable, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.events import Trace


def _summarise(value: Any) -> Hashable:
    """Reduce a value to a hashable summary for coherence comparison."""
    if isinstance(value, np.ndarray):
        return (value.shape, value.dtype.str, value.tobytes())
    if isinstance(value, (list, tuple)):
        return tuple(_summarise(v) for v in value)
    return value


class Tracer:
    """Runtime tracer implementing the hooks of
    :class:`~repro.runtime.runtime.Runtime` (``record_send``,
    ``record_recv``, ``record_collective``, ``register_task``)."""

    def __init__(self, n_tasks: int) -> None:
        self.trace = Trace(n_tasks)
        self._lock = threading.Lock()

    # ------------------------------------------------------- runtime hooks
    def register_task(self, rank: int) -> None:
        # Nothing to set up; kept for hook completeness.
        del rank

    def record_send(
        self, src: int, dst: int, tag: int, context: int, seq: int
    ) -> None:
        with self._lock:
            self.trace.send(src, dst, tag=tag, seq=seq)

    def record_recv(
        self, dst: int, src: int, tag: int, context: int, seq: int
    ) -> None:
        with self._lock:
            self.trace.recv(dst, src, tag=tag, seq=seq)

    def record_collective(
        self, rank: int, context: int, kind: str, group: Tuple[int, ...], epoch: int
    ) -> None:
        with self._lock:
            self.trace.collective(
                rank, context=context, epoch=epoch, op=kind, group=group
            )

    def record_rma(
        self, origin: int, win: int, op: str, target: int, nbytes: int
    ) -> None:
        """Record a one-sided access (put/get/accumulate) by ``origin``."""
        with self._lock:
            self.trace.rma(origin, win=win, op=op, target=target, nbytes=nbytes)

    def record_epoch(
        self,
        rank: int,
        win: int,
        op: str,
        target: Optional[int] = None,
        group: Optional[Tuple[int, ...]] = None,
    ) -> None:
        """Record an RMA epoch boundary (fence/post/start/.../unlock)."""
        with self._lock:
            self.trace.epoch_call(rank, win=win, op=op, target=target, group=group)

    # ---------------------------------------------------- access recording
    def read(self, rank: int, var: str, value: Any) -> None:
        """Record that ``rank`` read ``value`` from global ``var``."""
        with self._lock:
            self.trace.read(rank, var, _summarise(value))

    def write(self, rank: int, var: str, value: Any) -> None:
        """Record that ``rank`` wrote ``value`` to global ``var``."""
        with self._lock:
            self.trace.write(rank, var, _summarise(value))


__all__ = ["Tracer"]
