"""Formal model of section III + the future-work auto-detector.

* :mod:`~repro.analysis.events` -- traces of reads/writes/messages/
  collectives;
* :mod:`~repro.analysis.happens_before` -- the ≺ / ∥ relations via
  vector clocks over the precedence DAG;
* :mod:`~repro.analysis.coherence` -- the coherent-read conditions 1-3;
* :mod:`~repro.analysis.detector` -- classifies variables as eligible /
  eligible-with-singles / ineligible and proposes pragmas;
* :mod:`~repro.analysis.tracing` -- records traces from live runs.
"""

from repro.analysis.events import Event, EventKind, Trace
from repro.analysis.happens_before import (
    HappensBefore,
    TraceError,
    rma_epoch_violations,
)
from repro.analysis.coherence import (
    ReadCheck,
    VariableCoherence,
    check_read,
    check_variable,
)
from repro.analysis.detector import (
    Eligibility,
    VariableReport,
    detect,
    detect_variable,
)
from repro.analysis.tracing import Tracer
from repro.analysis.autopatch import PatchResult, auto_patch_source
from repro.analysis.explorer import Violation, explore, random_linearization, replay

__all__ = [
    "PatchResult",
    "auto_patch_source",
    "Violation",
    "explore",
    "random_linearization",
    "replay",
    "Event",
    "EventKind",
    "Trace",
    "HappensBefore",
    "TraceError",
    "rma_epoch_violations",
    "ReadCheck",
    "VariableCoherence",
    "check_read",
    "check_variable",
    "Eligibility",
    "VariableReport",
    "detect",
    "detect_variable",
    "Tracer",
]
