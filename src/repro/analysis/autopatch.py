"""Automatic HLS patching: from detection report to modified source.

Closes the loop the paper's future work opens: given a module's source
and the per-variable :class:`~repro.analysis.detector.VariableReport`
of a traced run, rewrite the source with the pragmas the detector
suggests --

* an ``#pragma hls <scope>(var)`` line after the module-level
  definition of every eligible variable;
* for *eligible-with-singles* variables, an ``#pragma hls single(var)``
  line before every function statement that stores into the variable
  (the section III-C transformation).

The patched source is valid input for
:func:`repro.hls.compiler.compile_module_source`, so the full pipeline
is: run traced -> detect -> patch -> recompile -> the program now
shares memory.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from repro.analysis.detector import Eligibility, VariableReport


@dataclass
class PatchResult:
    """Outcome of :func:`auto_patch_source`."""

    source: str
    inserted: List[Tuple[int, str]] = field(default_factory=list)  # (orig line, pragma)
    patched_variables: List[str] = field(default_factory=list)
    skipped_variables: Dict[str, str] = field(default_factory=dict)  # var -> reason


def _module_definition_line(tree: ast.Module, var: str) -> int:
    """Line of the last module-level assignment defining ``var``."""
    line = -1
    for node in tree.body:
        targets: List[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            targets = [node.target]
        for t in targets:
            if isinstance(t, ast.Name) and t.id == var:
                line = max(line, node.end_lineno or node.lineno)
    return line


class _WriteFinder(ast.NodeVisitor):
    """Statements inside functions that store into ``var[...]``."""

    def __init__(self, var: str) -> None:
        self.var = var
        self.lines: Set[int] = set()
        self._stmt_stack: List[ast.stmt] = []

    def _writes_var(self, target: ast.expr) -> bool:
        # var[...] = ... / var[...] += ...
        node = target
        while isinstance(node, ast.Subscript):
            node = node.value
        return isinstance(node, ast.Name) and node.id == self.var

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        for stmt in ast.walk(node):
            targets: List[ast.expr] = []
            if isinstance(stmt, ast.Assign):
                targets = stmt.targets
            elif isinstance(stmt, ast.AugAssign):
                targets = [stmt.target]
            for t in targets:
                if isinstance(t, ast.Subscript) and self._writes_var(t):
                    self.lines.add(stmt.lineno)

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]


def auto_patch_source(
    source: str,
    reports: Dict[str, VariableReport],
    *,
    scope: str = "node",
) -> PatchResult:
    """Insert the detector's pragmas into ``source`` (see module doc)."""
    tree = ast.parse(source)
    lines = source.splitlines()
    # insertions: line number AFTER which to insert -> list of pragma text
    after: Dict[int, List[str]] = {}
    before: Dict[int, List[str]] = {}
    result = PatchResult(source=source)

    for var, rep in sorted(reports.items()):
        if rep.status is Eligibility.INELIGIBLE:
            result.skipped_variables[var] = rep.reason
            continue
        def_line = _module_definition_line(tree, var)
        if def_line < 0:
            result.skipped_variables[var] = "no module-level definition found"
            continue
        scope_pragma = f"#pragma hls {scope}({var})"
        after.setdefault(def_line, []).append(scope_pragma)
        result.inserted.append((def_line, scope_pragma))
        if rep.status is Eligibility.ELIGIBLE_WITH_SINGLES:
            finder = _WriteFinder(var)
            finder.visit(tree)
            for ln in sorted(finder.lines):
                indent = lines[ln - 1][: len(lines[ln - 1]) - len(lines[ln - 1].lstrip())]
                single = f"{indent}#pragma hls single({var})"
                before.setdefault(ln, []).append(single)
                result.inserted.append((ln, single))
        result.patched_variables.append(var)

    out: List[str] = []
    for i, text in enumerate(lines, start=1):
        for pragma in before.get(i, []):
            out.append(pragma)
        out.append(text)
        for pragma in after.get(i, []):
            out.append(pragma)
    result.source = "\n".join(out) + ("\n" if source.endswith("\n") else "")
    return result


__all__ = ["PatchResult", "auto_patch_source"]
