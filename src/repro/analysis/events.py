"""Trace events for the happens-before analysis (paper section III).

A trace is one recorded execution of an MPI program: per task, the
ordered sequence of *events* -- global-variable reads/writes, message
sends/receives, and collective episodes.  Event identity is
``(task, index)`` with ``index`` the position in the task's program
order; the happens-before relation is then derived from program order
plus the synchronisation edges the events encode.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, List, Optional, Sequence, Tuple


class EventKind(enum.Enum):
    READ = "read"
    WRITE = "write"
    SEND = "send"
    RECV = "recv"
    COLLECTIVE = "collective"
    HLS_SYNC = "hls_sync"
    #: one-sided access (put/get/accumulate); ``peer`` is the target,
    #: ``win`` the window id, ``op`` the access kind
    RMA = "rma"
    #: RMA epoch boundary (fence/post/start/complete/wait/lock/...);
    #: ``op`` names the call, ``group``/``peer`` its targets
    EPOCH = "epoch"


@dataclass(frozen=True)
class Event:
    """One event in one task's program order."""

    task: int
    index: int
    kind: EventKind
    # variable access fields
    var: Optional[str] = None
    value: Optional[Hashable] = None
    # message fields: (src, dst, tag, seq) identify the matching pair
    peer: Optional[int] = None
    tag: Optional[int] = None
    seq: Optional[int] = None
    # collective fields: (context, epoch) identify the episode
    context: Optional[int] = None
    epoch: Optional[int] = None
    op: Optional[str] = None
    group: Optional[Tuple[int, ...]] = None
    # RMA fields: the window the access/epoch call belongs to
    win: Optional[int] = None

    @property
    def eid(self) -> Tuple[int, int]:
        return (self.task, self.index)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        if self.kind in (EventKind.READ, EventKind.WRITE):
            return f"t{self.task}#{self.index}:{self.kind.value}({self.var}={self.value})"
        if self.kind in (EventKind.SEND, EventKind.RECV):
            return f"t{self.task}#{self.index}:{self.kind.value}(peer={self.peer}, tag={self.tag})"
        return f"t{self.task}#{self.index}:{self.kind.value}({self.op}@{self.context}.{self.epoch})"


class Trace:
    """Per-task event sequences with a builder API.

    Build either programmatically (unit tests, synthetic schedules) or
    through :class:`~repro.analysis.tracing.Tracer` hooked into a live
    runtime.
    """

    def __init__(self, n_tasks: int) -> None:
        if n_tasks < 1:
            raise ValueError("trace needs at least one task")
        self.n_tasks = n_tasks
        self.events: List[List[Event]] = [[] for _ in range(n_tasks)]

    # ----------------------------------------------------------------- build
    def _append(self, task: int, **kw: Any) -> Event:
        ev = Event(task=task, index=len(self.events[task]), **kw)
        self.events[task].append(ev)
        return ev

    def read(self, task: int, var: str, value: Hashable) -> Event:
        return self._append(task, kind=EventKind.READ, var=var, value=value)

    def write(self, task: int, var: str, value: Hashable) -> Event:
        return self._append(task, kind=EventKind.WRITE, var=var, value=value)

    def send(self, task: int, dst: int, *, tag: int = 0, seq: int = 0) -> Event:
        return self._append(task, kind=EventKind.SEND, peer=dst, tag=tag, seq=seq)

    def recv(self, task: int, src: int, *, tag: int = 0, seq: int = 0) -> Event:
        return self._append(task, kind=EventKind.RECV, peer=src, tag=tag, seq=seq)

    def collective(
        self,
        task: int,
        *,
        context: int = 0,
        epoch: int,
        op: str = "barrier",
        group: Optional[Sequence[int]] = None,
    ) -> Event:
        return self._append(
            task, kind=EventKind.COLLECTIVE, context=context, epoch=epoch,
            op=op, group=tuple(group) if group is not None else None,
        )

    def rma(
        self,
        task: int,
        *,
        win: int,
        op: str,
        target: int,
        nbytes: Optional[int] = None,
    ) -> Event:
        """A one-sided access (put/get/accumulate) by ``task``."""
        return self._append(
            task, kind=EventKind.RMA, win=win, op=op, peer=target,
            value=nbytes,
        )

    def epoch_call(
        self,
        task: int,
        *,
        win: int,
        op: str,
        target: Optional[int] = None,
        group: Optional[Sequence[int]] = None,
    ) -> Event:
        """An RMA epoch boundary (fence/post/start/complete/wait/lock)."""
        return self._append(
            task, kind=EventKind.EPOCH, win=win, op=op, peer=target,
            group=tuple(group) if group is not None else None,
        )

    def barrier_all(self, *, context: int = 0, epoch: int) -> List[Event]:
        """Convenience: a barrier episode joined by every task."""
        return [
            self.collective(t, context=context, epoch=epoch, op="barrier")
            for t in range(self.n_tasks)
        ]

    # ------------------------------------------------------------------ query
    def all_events(self) -> List[Event]:
        return [ev for seq in self.events for ev in seq]

    def accesses(self, var: str) -> List[Event]:
        return [
            ev for ev in self.all_events()
            if ev.var == var and ev.kind in (EventKind.READ, EventKind.WRITE)
        ]

    def writes(self, var: str) -> List[Event]:
        return [ev for ev in self.accesses(var) if ev.kind is EventKind.WRITE]

    def reads(self, var: str) -> List[Event]:
        return [ev for ev in self.accesses(var) if ev.kind is EventKind.READ]

    def variables(self) -> List[str]:
        seen: Dict[str, None] = {}
        for ev in self.all_events():
            if ev.var is not None:
                seen.setdefault(ev.var, None)
        return list(seen)

    def __len__(self) -> int:
        return sum(len(s) for s in self.events)


__all__ = ["Event", "EventKind", "Trace"]
