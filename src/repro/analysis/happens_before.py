"""The happens-before relation (paper section III-A).

"We say that a ≺ b if a is executed before b in all schedules
compatible with the partial order defined by the synchronizations of
the parallel program.  If neither a ≺ b nor b ≺ a, we say that a
happens in parallel with b, a ∥ b." (Lamport [6])

The precedence graph is built from three edge families:

* **program order**: consecutive events of one task;
* **messages**: a send precedes its matching receive (matched on
  ``(src, dst, tag, seq)``);
* **collectives**: every participant's episode event precedes every
  participant's *next* event.  This matches both MPI barriers and this
  repository's shared-memory collectives (whose data collectives are
  write -> barrier -> read -> barrier and therefore barrier-strength).

Precedence queries use vector clocks computed in one topological pass
over the DAG (networkx), so ``precedes`` is O(1) after construction.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Tuple

import networkx as nx
import numpy as np

from repro.analysis.events import Event, EventKind, Trace


class TraceError(ValueError):
    """Inconsistent trace (unmatched message, mismatched episode...)."""


class HappensBefore:
    """Precedence oracle over one trace."""

    def __init__(self, trace: Trace) -> None:
        self.trace = trace
        self.graph = nx.DiGraph()
        self._build()
        self._clocks: Dict[Hashable, np.ndarray] = {}
        self._compute_clocks()

    # ------------------------------------------------------------------ build
    def _build(self) -> None:
        g = self.graph
        tr = self.trace
        for seq in tr.events:
            for ev in seq:
                g.add_node(ev.eid)
            for a, b in zip(seq, seq[1:]):
                g.add_edge(a.eid, b.eid)

        # message edges
        sends: Dict[Tuple[int, int, int, int], Event] = {}
        recvs: Dict[Tuple[int, int, int, int], Event] = {}
        for ev in tr.all_events():
            if ev.kind is EventKind.SEND:
                key = (ev.task, ev.peer, ev.tag, ev.seq)
                if key in sends:
                    raise TraceError(f"duplicate send key {key}")
                sends[key] = ev
            elif ev.kind is EventKind.RECV:
                key = (ev.peer, ev.task, ev.tag, ev.seq)
                if key in recvs:
                    raise TraceError(f"duplicate recv key {key}")
                recvs[key] = ev
        for key, r in recvs.items():
            s = sends.get(key)
            if s is None:
                raise TraceError(f"recv {r} has no matching send (key {key})")
            g.add_edge(s.eid, r.eid)

        # collective episodes: virtual node per (context, epoch)
        episodes: Dict[Tuple[int, int], List[Event]] = {}
        for ev in tr.all_events():
            if ev.kind in (EventKind.COLLECTIVE, EventKind.HLS_SYNC):
                episodes.setdefault((ev.context, ev.epoch), []).append(ev)
        for (ctx, epoch), members in episodes.items():
            vnode = ("episode", ctx, epoch)
            g.add_node(vnode)
            for ev in members:
                g.add_edge(ev.eid, vnode)
                nxt = self._next_of(ev)
                if nxt is not None:
                    g.add_edge(vnode, nxt.eid)

        if not nx.is_directed_acyclic_graph(g):
            raise TraceError("synchronizations form a cycle; trace impossible")

    def _next_of(self, ev: Event) -> Optional[Event]:
        seq = self.trace.events[ev.task]
        return seq[ev.index + 1] if ev.index + 1 < len(seq) else None

    # ------------------------------------------------------------------ clocks
    def _compute_clocks(self) -> None:
        n = self.trace.n_tasks
        for node in nx.topological_sort(self.graph):
            clock = np.zeros(n, dtype=np.int64)
            for pred in self.graph.predecessors(node):
                np.maximum(clock, self._clocks[pred], out=clock)
            if not (isinstance(node, tuple) and node and node[0] == "episode"):
                task, index = node
                clock[task] = index + 1
            self._clocks[node] = clock

    # ------------------------------------------------------------------ query
    def precedes(self, a: Event, b: Event) -> bool:
        """a ≺ b (strict)."""
        if a.eid == b.eid:
            return False
        return int(self._clocks[b.eid][a.task]) >= a.index + 1

    def parallel(self, a: Event, b: Event) -> bool:
        """a ∥ b."""
        return (
            a.eid != b.eid
            and not self.precedes(a, b)
            and not self.precedes(b, a)
        )

    def clock(self, ev: Event) -> np.ndarray:
        return self._clocks[ev.eid].copy()

    def sorted_linearization(self) -> List[Event]:
        """One total order compatible with ≺ (event nodes only)."""
        order = []
        for node in nx.topological_sort(self.graph):
            if isinstance(node, tuple) and len(node) == 2 and isinstance(node[0], int):
                task, index = node
                order.append(self.trace.events[task][index])
        return order


def rma_epoch_violations(trace: Trace) -> List[Tuple[Event, str]]:
    """Offline RMA epoch-misuse detection over one trace.

    Replays each task's program order tracking the origin-side epoch
    state per window -- fence epochs (``fence`` opens, ``fence_end``
    closes), PSCW access epochs (``start`` opens for its group,
    ``complete`` closes) and passive-target locks (``lock_*``/
    ``lock_all`` open per target, ``unlock``/``unlock_all`` close) --
    and reports every :attr:`EventKind.RMA` access not covered by an
    open epoch for its target, the same rule the runtime enforces
    online with :class:`~repro.runtime.errors.RMAEpochError`.
    """
    violations: List[Tuple[Event, str]] = []
    for seq in trace.events:
        fence_open: Dict[int, bool] = {}
        started: Dict[int, Tuple[int, ...]] = {}
        locks: Dict[int, set] = {}
        lock_all: Dict[int, bool] = {}
        for ev in seq:
            win = ev.win if ev.win is not None else -1
            if ev.kind is EventKind.EPOCH:
                op = ev.op or ""
                if op == "fence":
                    fence_open[win] = True
                elif op == "fence_end":
                    fence_open[win] = False
                elif op == "start":
                    started[win] = ev.group or ()
                elif op == "complete":
                    started.pop(win, None)
                elif op.startswith("lock_") and op != "lock_all":
                    locks.setdefault(win, set()).add(ev.peer)
                elif op == "unlock":
                    locks.get(win, set()).discard(ev.peer)
                elif op == "lock_all":
                    lock_all[win] = True
                elif op == "unlock_all":
                    lock_all[win] = False
            elif ev.kind is EventKind.RMA:
                covered = (
                    fence_open.get(win, False)
                    or ev.peer in started.get(win, ())
                    or lock_all.get(win, False)
                    or ev.peer in locks.get(win, set())
                )
                if not covered:
                    violations.append((
                        ev,
                        f"{ev.op} to target {ev.peer} on window {win} "
                        f"outside any access epoch",
                    ))
    return violations


__all__ = ["HappensBefore", "TraceError", "rma_epoch_violations"]
