"""Coherent-read conditions of paper section III-B / III-C.

A read ``r`` of a variable returning value ``v(r)`` is *coherent* iff

1. every write ``w ∥ r`` to the variable has ``v(w) == v(r)``, and
2. every write ``w ≺ r`` with no other write ``w'`` such that
   ``w ≺ w' ≺ r`` has ``v(w) == v(r)``.

A variable all of whose reads are coherent can be made HLS *without
adding any synchronization*.  Otherwise, a necessary condition to
salvage it with added synchronisations is

3. at least one write among those considered in 1-2 has
   ``v(w) == v(r)``.

(A read with no candidate write at all reads the initial value; we
treat the initial value as a virtual write preceding everything, so
condition 2/3 then compare against it.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, List, Optional

from repro.analysis.events import Event, EventKind, Trace
from repro.analysis.happens_before import HappensBefore


@dataclass(frozen=True)
class ReadCheck:
    """Coherence verdict for one read."""

    read: Event
    parallel_writes: tuple
    last_writes: tuple          # writes preceding r with none in between
    cond1: bool
    cond2: bool
    cond3: bool

    @property
    def coherent(self) -> bool:
        """Eligible without additional synchronisation (cond 1 and 2)."""
        return self.cond1 and self.cond2

    @property
    def salvageable(self) -> bool:
        """Condition 3: could become coherent with added syncs."""
        return self.cond3


def check_read(
    hb: HappensBefore,
    read: Event,
    writes: List[Event],
    *,
    initial_value: Optional[Hashable] = None,
) -> ReadCheck:
    """Evaluate conditions 1-3 for one read against a write set."""
    if read.kind is not EventKind.READ:
        raise ValueError(f"{read} is not a read")
    par = tuple(w for w in writes if hb.parallel(w, read))
    before = [w for w in writes if hb.precedes(w, read)]
    last = tuple(
        w for w in before
        if not any(
            w2 is not w and hb.precedes(w, w2) and hb.precedes(w2, read)
            for w2 in before
        )
    )
    cond1 = all(w.value == read.value for w in par)
    if last:
        cond2 = all(w.value == read.value for w in last)
    else:
        # No preceding write: the read observes the initial value.
        cond2 = initial_value is None or read.value == initial_value
    candidates = list(par) + list(last)
    if candidates:
        cond3 = any(w.value == read.value for w in candidates)
    else:
        cond3 = cond2
    return ReadCheck(
        read=read, parallel_writes=par, last_writes=last,
        cond1=cond1, cond2=cond2, cond3=cond3,
    )


@dataclass(frozen=True)
class VariableCoherence:
    """Aggregate verdict for one variable."""

    var: str
    checks: tuple

    @property
    def eligible_without_sync(self) -> bool:
        return all(c.coherent for c in self.checks)

    @property
    def salvageable(self) -> bool:
        return all(c.salvageable for c in self.checks)

    @property
    def incoherent_reads(self) -> List[ReadCheck]:
        return [c for c in self.checks if not c.coherent]


def check_variable(
    hb: HappensBefore,
    trace: Trace,
    var: str,
    *,
    initial_value: Optional[Hashable] = None,
) -> VariableCoherence:
    """Conditions 1-3 for every read of ``var`` in the trace."""
    writes = trace.writes(var)
    checks = tuple(
        check_read(hb, r, writes, initial_value=initial_value)
        for r in trace.reads(var)
    )
    return VariableCoherence(var=var, checks=checks)


__all__ = ["ReadCheck", "VariableCoherence", "check_read", "check_variable"]
