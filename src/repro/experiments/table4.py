"""Table IV: execution time and memory consumption for Tachyon.

Paper reference (736 cores; scene 377MB + image 183MB = 560MB/task):

    | # cores | MPI      | time(s) | avg mem (MB) | max mem (MB) |
    | 736     | MPC HLS  | 83      | 748          | 931          |
    |         | MPC      | 88      | 4786         | 4975         |
    |         | Open MPI | 89      | 4885         | 5118         |

Expected shape: HLS saves ~7 x 560MB ~ 3.9GB/node, and is *faster* than
both baselines because sharing the image removes the intra-node copies
on rank 0's node (the copy-elision path, measured via ``comm.elided``).
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

from repro.apps.eulermhd import AppRunResult
from repro.apps.tachyon import TachyonConfig, run_tachyon
from repro.experiments.table2 import MemoryTableResult, VARIANTS

PAPER = {
    (736, "MPC HLS"): (83, 748, 931),
    (736, "MPC"): (88, 4786, 4975),
    (736, "Open MPI"): (89, 4885, 5118),
}


def run_table4(
    *, core_counts: Sequence[int] = (736,), **config_overrides
) -> MemoryTableResult:
    """Regenerate Table IV."""
    rows: Dict[Tuple[int, str], AppRunResult] = {}
    for cores in core_counts:
        if cores % 8:
            raise ValueError("core counts must be multiples of 8 (8/node)")
        for label, runtime, hls in VARIANTS:
            cfg = TachyonConfig(
                n_nodes=cores // 8, runtime=runtime, hls=hls, **config_overrides
            )
            rows[(cores, label)] = run_tachyon(cfg)
    return MemoryTableResult(
        title="Table IV -- Tachyon time and memory per node",
        paper=PAPER,
        rows=rows,
    )


if __name__ == "__main__":  # pragma: no cover
    result = run_table4()
    print(result.render())
    print(result.breakdown_report())
