"""Table III: execution time and memory consumption for Gadget-2.

Paper reference (256 cores):

    | # cores | MPI      | time(s) | avg mem (MB) | max mem (MB) |
    | 256     | MPC HLS  | 1540    | 703          | 747          |
    |         | MPC      | 1540    | 938          | 988          |
    |         | Open MPI | 1438    | 1731         | 1742         |

Expected shape: HLS saves ~7 x 33MB ~ 230MB/node; the Open MPI column
is far above MPC because Gadget's all-pairs communication pattern
instantiates eager buffers for every connection; HLS time overhead
negligible.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

from repro.apps.eulermhd import AppRunResult
from repro.apps.gadget import GadgetConfig, run_gadget
from repro.experiments.table2 import MemoryTableResult, VARIANTS

PAPER = {
    (256, "MPC HLS"): (1540, 703, 747),
    (256, "MPC"): (1540, 938, 988),
    (256, "Open MPI"): (1438, 1731, 1742),
}


def run_table3(
    *, core_counts: Sequence[int] = (256,), **config_overrides
) -> MemoryTableResult:
    """Regenerate Table III."""
    rows: Dict[Tuple[int, str], AppRunResult] = {}
    for cores in core_counts:
        if cores % 8:
            raise ValueError("core counts must be multiples of 8 (8/node)")
        for label, runtime, hls in VARIANTS:
            cfg = GadgetConfig(
                n_nodes=cores // 8, runtime=runtime, hls=hls, **config_overrides
            )
            rows[(cores, label)] = run_gadget(cfg)
    return MemoryTableResult(
        title="Table III -- Gadget-2 time and memory per node",
        paper=PAPER,
        rows=rows,
    )


if __name__ == "__main__":  # pragma: no cover
    result = run_table3()
    print(result.render())
    print(result.breakdown_report())
