"""Figure 1: the two scopes for HLS variables.

The paper's figure is a diagram: with the ``node`` scope one copy of
the variable serves the whole node (suppressing all duplication, at the
price of cross-socket invalidations when written); with the ``cache
L3`` scope one copy lives per shared cache (less saving, original cache
behaviour).  This module regenerates the figure as an annotated scope
partition of the simulated Nehalem-EX node.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.machine import ScopeSpec, nehalem_ex_node
from repro.machine.topology import Machine


@dataclass
class Figure1Result:
    machine: Machine
    partitions: Dict[str, List[List[int]]]   # scope -> list of PU groups

    def render(self) -> str:
        lines = [
            "Figure 1 -- scope instances on the 4-socket Nehalem-EX node",
            self.machine.ascii_diagram(max_nodes=1),
            "",
        ]
        for scope, groups in self.partitions.items():
            n = len(groups)
            lines.append(
                f"scope {scope!r}: {n} instance(s) -> "
                f"{'no duplication on the node' if n == 1 else f'{n} copies'}"
            )
            for i, g in enumerate(groups):
                lines.append(f"  {scope}#{i}: cores {g[0]}..{g[-1]}")
        return "\n".join(lines)


def run_figure1(machine: Machine = None) -> Figure1Result:
    m = machine if machine is not None else nehalem_ex_node()
    partitions: Dict[str, List[List[int]]] = {}
    for scope in ("node", "numa", "cache", "core"):
        spec = ScopeSpec.parse(scope)
        partitions[scope] = [
            sorted(m.scope_members(inst)) for inst in m.scope_instances(spec)
        ]
    return Figure1Result(machine=m, partitions=partitions)


if __name__ == "__main__":  # pragma: no cover
    print(run_figure1().render())
