"""Figure 3: matmul performance vs matrix size, with and without update.

Paper shape (4x Nehalem-EX, weak scaling, MKL dgemm): the sequential
program is fastest; all variants coincide for small matrices (all fit
in cache); the regular MPI program falls off the shared cache first;
the HLS variants fall off later (B is not duplicated); the gap is
maximal around the regular program's cache exit and narrows -- but does
not vanish -- for larger sizes.  In the update version the numa scope
beats the node scope for sizes where B stays cache-resident.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.apps.matmul import MatmulConfig, run_matmul
from repro.metrics import Table

DEFAULT_SIZES = (16, 24, 32, 40, 48, 64, 96)
SERIES = ("seq", "none", "node", "numa")
SERIES_LABEL = {
    "seq": "sequential",
    "none": "without HLS",
    "node": "HLS node",
    "numa": "HLS numa",
}


@dataclass
class Figure3Result:
    sizes: Tuple[int, ...]
    # (update, variant) -> perf per size (flops/cycle/task)
    series: Dict[Tuple[bool, str], List[float]]

    def render(self, *, chart: bool = True) -> str:
        from repro.metrics import line_chart

        out = []
        for update in (False, True):
            present = {
                SERIES_LABEL[v]: self.series[(update, v)]
                for v in SERIES
                if (update, v) in self.series
            }
            if not present:
                continue
            title = (
                "Figure 3 -- matmul perf (flops/cycle/task), "
                + ("update version" if update else "no-update version")
            )
            t = Table(["variant"] + [f"N={n}" for n in self.sizes], title=title)
            for label, perfs in present.items():
                t.add_row(label, *[f"{p:.2f}" for p in perfs])
            out.append(t.render())
            if chart and len(self.sizes) >= 2:
                out.append(
                    line_chart(
                        list(self.sizes), present,
                        title=title + " (chart)",
                        y_label="flops/cycle/task",
                    )
                )
        return "\n\n".join(out)

    def crossover(self, update: bool, variant: str, *, frac: float = 0.85) -> int:
        """First size where ``variant`` drops below ``frac`` of the
        sequential performance -- the cache-exit point."""
        seq = self.series[(update, "seq")]
        var = self.series[(update, variant)]
        for n, s, v in zip(self.sizes, seq, var):
            if v < frac * s:
                return n
        return -1


def run_figure3(
    *,
    sizes: Sequence[int] = DEFAULT_SIZES,
    updates: Sequence[bool] = (False, True),
    variants: Sequence[str] = SERIES,
    **config_overrides,
) -> Figure3Result:
    """Regenerate Figure 3 (restrict ``sizes`` for quick runs)."""
    series: Dict[Tuple[bool, str], List[float]] = {}
    for update in updates:
        for variant in variants:
            perfs = []
            for n in sizes:
                cfg = MatmulConfig(
                    n=n, update=update, variant=variant, **config_overrides
                )
                perfs.append(run_matmul(cfg).perf)
            series[(update, variant)] = perfs
    return Figure3Result(sizes=tuple(sizes), series=series)


if __name__ == "__main__":  # pragma: no cover
    print(run_figure3().render())
