"""Table I: parallel efficiency of the mesh-update benchmark.

Paper reference values (4x Nehalem-EX, weak scaling):

    |             |  without update   |    with update    |
    | mesh size   | small  med  large | small  med  large |
    | without HLS |  37%   39%   40%  |  30%   37%   40%  |
    | HLS node    |  94%   93%   99%  |  65%   87%   95%  |
    | HLS numa    |  94%   93%   99%  |  88%   92%   97%  |

Expected shape from this reproduction: without-HLS far below both HLS
variants; numa >= node with the gap concentrated in the small/update
cell; node-scope efficiency under update growing with mesh size.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.apps.mesh_update import MeshUpdateConfig, run_mesh_update
from repro.metrics import Table

PAPER = {
    # (variant, update, size) -> paper efficiency (%)
    ("none", False, "small"): 37, ("none", False, "medium"): 39, ("none", False, "large"): 40,
    ("node", False, "small"): 94, ("node", False, "medium"): 93, ("node", False, "large"): 99,
    ("numa", False, "small"): 94, ("numa", False, "medium"): 93, ("numa", False, "large"): 99,
    ("none", True, "small"): 30, ("none", True, "medium"): 37, ("none", True, "large"): 40,
    ("node", True, "small"): 65, ("node", True, "medium"): 87, ("node", True, "large"): 95,
    ("numa", True, "small"): 88, ("numa", True, "medium"): 92, ("numa", True, "large"): 97,
}

ROW_LABEL = {"none": "without HLS", "node": "HLS node", "numa": "HLS numa"}


@dataclass
class Table1Result:
    """Measured efficiencies keyed like :data:`PAPER`."""

    measured: Dict[Tuple[str, bool, str], float]

    def render(self) -> str:
        t = Table(
            ["variant", "upd", "size", "efficiency", "paper"],
            title="Table I -- mesh update parallel efficiency "
                  "(simulated 4x Nehalem-EX)",
        )
        for (variant, update, size), eff in sorted(
            self.measured.items(), key=lambda kv: (kv[0][1], kv[0][2], kv[0][0])
        ):
            t.add_row(
                ROW_LABEL[variant],
                "yes" if update else "no",
                size,
                f"{eff:6.1%}",
                f"{PAPER[(variant, update, size)]}%",
            )
        return t.render()


def run_table1(
    *,
    sizes: Sequence[str] = ("small", "medium", "large"),
    updates: Sequence[bool] = (False, True),
    variants: Sequence[str] = ("none", "node", "numa"),
    **config_overrides,
) -> Table1Result:
    """Regenerate Table I (restrict ``sizes`` etc. for quick runs)."""
    measured: Dict[Tuple[str, bool, str], float] = {}
    for update in updates:
        for size in sizes:
            for variant in variants:
                cfg = MeshUpdateConfig(
                    size=size, update=update, variant=variant, **config_overrides
                )
                measured[(variant, update, size)] = run_mesh_update(cfg).efficiency
    return Table1Result(measured=measured)


if __name__ == "__main__":  # pragma: no cover
    print(run_table1().render())
