"""The introduction's motivating comparison (not a numbered table).

"One solution [...] is to add a thread-based programming model like
OpenMP inside the application [...] But going to hybrid may be a
tedious task [...] the Amdahl effect may be large if one wants to
dramatically reduce the memory footprint."

Renders the tasks x threads trade-off of an 8-core node for a code with
one large shareable table under master-only communication, plus the
pure-MPI + HLS row that achieves both optima at once.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.hls import HLSProgram
from repro.machine import core2_cluster
from repro.metrics import Table
from repro.omp import HybridLayout, hybrid_layouts, master_only_time
from repro.runtime import Runtime

TABLE_BYTES = 128 << 20
COMPUTE = 10.0
COMM = 1.0


@dataclass
class IntroHybridResult:
    rows: List[Tuple[str, int, float]]        # (label, mem MB, step time)

    def render(self) -> str:
        t = Table(
            ["decomposition", "table MB/node", "step time"],
            title="Intro -- hybrid decompositions vs pure MPI + HLS "
                  "(8-core node, master-only comm)",
        )
        for label, mem, time_ in self.rows:
            t.add_row(label, mem, f"{time_:.1f}")
        return t.render()

    def hls_row(self) -> Tuple[str, int, float]:
        return next(r for r in self.rows if "HLS" in r[0])


def run_intro_hybrid(*, cores_per_node: int = 8) -> IntroHybridResult:
    rows: List[Tuple[str, int, float]] = []
    for layout in hybrid_layouts(cores_per_node):
        rows.append((
            f"{layout.tasks_per_node} tasks x {layout.threads_per_task} threads",
            layout.memory_per_node(TABLE_BYTES) >> 20,
            master_only_time(layout, compute_per_core=COMPUTE,
                             comm_per_task_stream=COMM),
        ))
    # measured HLS row
    rt = Runtime(core2_cluster(1), n_tasks=cores_per_node, timeout=10.0)
    prog = HLSProgram(rt)
    prog.declare("table", shape=(8,), scope="node", virtual_bytes=TABLE_BYTES)
    rt.run(lambda ctx: prog.attach(ctx)["table"].sum())
    pure = HybridLayout(cores_per_node, 1)
    rows.append((
        f"{cores_per_node} tasks x 1 + HLS",
        prog.storage.hls_images_bytes() >> 20,
        master_only_time(pure, compute_per_core=COMPUTE,
                         comm_per_task_stream=COMM),
    ))
    return IntroHybridResult(rows=rows)


if __name__ == "__main__":  # pragma: no cover
    print(run_intro_hybrid().render())
