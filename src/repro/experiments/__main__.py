"""Run every experiment and print the paper-style tables.

Usage::

    python -m repro.experiments            # quick versions
    python -m repro.experiments --full     # paper-scale sweeps (minutes)
"""

from __future__ import annotations

import sys
import time

from repro.experiments import (
    run_figure1,
    run_figure2,
    run_figure3,
    run_intro_hybrid,
    run_table1,
    run_table2,
    run_table3,
    run_table4,
)


def main(argv=None) -> int:
    args = argv if argv is not None else sys.argv[1:]
    full = "--full" in args
    jobs = [
        ("Intro (hybrid trade-off)", lambda: run_intro_hybrid()),
        ("Figure 1", lambda: run_figure1()),
        ("Figure 2", lambda: run_figure2()),
        (
            "Table I",
            (lambda: run_table1()) if full
            else (lambda: run_table1(sizes=("small",))),
        ),
        (
            "Figure 3",
            (lambda: run_figure3()) if full
            else (lambda: run_figure3(sizes=(16, 40, 64), tasks=16)),
        ),
        (
            "Table II",
            (lambda: run_table2()) if full
            else (lambda: run_table2(core_counts=(256,))),
        ),
        ("Table III", lambda: run_table3()),
        (
            "Table IV",
            (lambda: run_table4()) if full
            else (lambda: run_table4(core_counts=(256,))),
        ),
    ]
    for name, job in jobs:
        t0 = time.monotonic()
        result = job()
        dt = time.monotonic() - t0
        print(f"\n=== {name} ({dt:.1f}s) " + "=" * 40)
        print(result.render())
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
