"""Table II: execution time and memory consumption for EulerMHD.

Paper reference (8-core Core2 nodes, 4096^2 mesh, 128MB EOS table):

    | # cores | MPI      | time(s) | avg mem (MB) | max mem (MB) |
    | 256     | MPC HLS  | 145     | 651          | 672          |
    |         | MPC      | 146     | 1570         | 1590         |
    |         | Open MPI | 135     | 1715         | 1786         |
    | 512     | MPC HLS  | 73      | 490          | 550          |
    |         | MPC      | 73      | 1417         | 1466         |
    |         | Open MPI | 68      | 1573         | 1732         |
    | 736     | MPC HLS  | 51      | 455          | 531          |
    |         | MPC      | 51      | 1375         | 1448         |
    |         | Open MPI | 47      | 1574         | 1796         |

Expected shape: HLS saves ~7 x 128MB ~ 900MB/node at every core count;
MPC uses less than Open MPI with a gap growing with cores; HLS time
overhead negligible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.apps.eulermhd import AppRunResult, EulerMHDConfig, run_eulermhd
from repro.metrics import Table

PAPER = {
    (256, "MPC HLS"): (145, 651, 672),
    (256, "MPC"): (146, 1570, 1590),
    (256, "Open MPI"): (135, 1715, 1786),
    (512, "MPC HLS"): (73, 490, 550),
    (512, "MPC"): (73, 1417, 1466),
    (512, "Open MPI"): (68, 1573, 1732),
    (736, "MPC HLS"): (51, 455, 531),
    (736, "MPC"): (51, 1375, 1448),
    (736, "Open MPI"): (47, 1574, 1796),
}

VARIANTS: List[Tuple[str, str, bool]] = [
    ("MPC HLS", "mpc", True),
    ("MPC", "mpc", False),
    ("Open MPI", "openmpi", False),
]


@dataclass
class MemoryTableResult:
    """Measured rows of one memory table (II, III or IV)."""

    title: str
    paper: Dict[Tuple[int, str], Tuple[float, float, float]]
    rows: Dict[Tuple[int, str], AppRunResult]

    def render(self) -> str:
        t = Table(
            ["# cores", "MPI", "time (s)", "avg mem (MB)", "max mem (MB)",
             "paper (t/avg/max)"],
            title=self.title,
        )
        for (cores, label), res in sorted(self.rows.items()):
            p = self.paper.get((cores, label))
            t.add_row(
                cores, label,
                f"{res.modeled_time_s:.0f}",
                f"{res.mem.avg_mb:.0f}",
                f"{res.mem.max_mb:.0f}",
                f"{p[0]}/{p[1]}/{p[2]}" if p else "-",
            )
        return t.render()

    def breakdown_report(self) -> str:
        """Where each variant's bytes live: end-of-run live bytes per
        hierarchy level (from ``AppRunResult.memory_metrics``)."""
        lines = [f"{self.title} -- per-level live bytes"]
        for (cores, label), res in sorted(self.rows.items()):
            mm = res.memory_metrics
            if mm is None:
                continue
            detail = ", ".join(
                f"{lvl}={mm.by_level[lvl] / (1 << 20):.1f}MB"
                for lvl in sorted(mm.by_level)
            )
            lines.append(f"  {cores} cores, {label}: {detail}")
        return "\n".join(lines)


def run_table2(
    *, core_counts: Sequence[int] = (256, 512, 736), **config_overrides
) -> MemoryTableResult:
    """Regenerate Table II (``core_counts`` must be multiples of 8)."""
    rows: Dict[Tuple[int, str], AppRunResult] = {}
    for cores in core_counts:
        if cores % 8:
            raise ValueError("core counts must be multiples of 8 (8/node)")
        for label, runtime, hls in VARIANTS:
            cfg = EulerMHDConfig(
                n_nodes=cores // 8, runtime=runtime, hls=hls, **config_overrides
            )
            rows[(cores, label)] = run_eulermhd(cfg)
    return MemoryTableResult(
        title="Table II -- EulerMHD time and memory per node",
        paper=PAPER,
        rows=rows,
    )


if __name__ == "__main__":  # pragma: no cover
    result = run_table2()
    print(result.render())
    print(result.breakdown_report())
