"""Experiment harness: one module per table/figure of the paper.

Each ``run_*`` function regenerates the corresponding result and
returns structured data plus a paper-style rendered table; the module
is also runnable::

    python -m repro.experiments.table1
    python -m repro.experiments --all      # everything (slow)
"""

from repro.experiments.table1 import run_table1
from repro.experiments.table2 import run_table2
from repro.experiments.table3 import run_table3
from repro.experiments.table4 import run_table4
from repro.experiments.figure1 import run_figure1
from repro.experiments.figure2 import run_figure2
from repro.experiments.figure3 import run_figure3
from repro.experiments.intro_hybrid import run_intro_hybrid

__all__ = [
    "run_intro_hybrid",
    "run_table1",
    "run_table2",
    "run_table3",
    "run_table4",
    "run_figure1",
    "run_figure2",
    "run_figure3",
]
