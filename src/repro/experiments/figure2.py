"""Figure 2: memory layout of HLS structures.

The paper's figure shows each MPI task holding an array of scope
pointers; tasks on the same node share the ``node``-scope module array,
tasks on different NUMA nodes hold distinct ``numa``-scope structures.
This module materialises exactly that situation on a live runtime and
dumps the resulting storage map -- same module, one image per scope
instance, shared addresses within an instance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.hls import HLSProgram
from repro.machine import small_test_machine
from repro.runtime import Runtime


@dataclass
class Figure2Result:
    layout: str
    addresses: Dict[str, List[int]]    # var -> per-rank addresses

    def render(self) -> str:
        lines = ["Figure 2 -- live HLS memory layout", self.layout, ""]
        for var, addrs in self.addresses.items():
            shared = len(set(addrs))
            lines.append(
                f"variable {var!r}: per-rank addresses "
                f"{[hex(a) for a in addrs]} ({shared} distinct image(s))"
            )
        return "\n".join(lines)


def run_figure2() -> Figure2Result:
    machine = small_test_machine()    # 2 sockets x 2 cores, one node
    rt = Runtime(machine, timeout=10.0)
    prog = HLSProgram(rt)
    prog.declare("node_var", shape=(8,), scope="node")
    prog.declare("numa_var", shape=(8,), scope="numa")

    def main(ctx):
        h = prog.attach(ctx)
        return (h.addr("node_var"), h.addr("numa_var"))

    addrs = rt.run(main)
    return Figure2Result(
        layout=prog.storage.layout_report(),
        addresses={
            "node_var": [a for a, _ in addrs],
            "numa_var": [b for _, b in addrs],
        },
    )


if __name__ == "__main__":  # pragma: no cover
    print(run_figure2().render())
