"""HLS scope kinds and scope instances.

The paper defines four data scopes (section II-B1)::

    #pragma hls scope(var1, ..., varN) [level(L)]

* ``node``  -- one copy per computational node (largest scope)
* ``numa``  -- one copy per NUMA node; accepts a ``level`` clause
* ``cache`` -- one copy per cache; accepts a ``level`` clause (1..llc)
* ``core``  -- one copy per physical core (smallest scope; hyperthreads
  on the same core share the copy)

Scopes are totally ordered by *width*:
``core < cache(1) < cache(2) < ... < cache(llc) <= numa <= node``.
The ``hls barrier`` directive synchronises the *largest* scope among its
variable list, hence :func:`scope_rank`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional


class ScopeKind(enum.Enum):
    """The four HLS scope kinds of the paper, ordered small to large."""

    CORE = "core"
    CACHE = "cache"
    NUMA = "numa"
    NODE = "node"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


# Rank offsets used to build a total order.  Cache levels slot between
# CORE and NUMA; real machines have < 100 cache levels, so a stride of
# 100 keeps kinds disjoint.
_KIND_BASE = {
    ScopeKind.CORE: 0,
    ScopeKind.CACHE: 100,
    ScopeKind.NUMA: 1_000,
    ScopeKind.NODE: 10_000,
}


@dataclass(frozen=True, order=False)
class ScopeSpec:
    """A scope kind plus its optional ``level`` clause.

    ``level`` is meaningful for ``cache`` (cache level, 1-based) and
    ``numa`` (NUMA hierarchy level, for machines with nested NUMA
    domains; level 1 = innermost).  ``None`` means the default level:
    the last-level cache for ``cache`` and the innermost domain for
    ``numa``.
    """

    kind: ScopeKind
    level: Optional[int] = None

    def __post_init__(self) -> None:
        if self.kind in (ScopeKind.CORE, ScopeKind.NODE) and self.level is not None:
            raise ValueError(f"scope {self.kind.value!r} does not accept a level clause")
        if self.level is not None and self.level < 1:
            raise ValueError(f"scope level must be >= 1, got {self.level}")

    def __str__(self) -> str:
        if self.level is None:
            return self.kind.value
        return f"{self.kind.value} level({self.level})"

    @classmethod
    def parse(cls, text: str) -> "ScopeSpec":
        """Parse a scope spec such as ``"node"``, ``"numa"``,
        ``"cache level(2)"`` or the shorthand ``"cache(2)"`` / ``"llc"``.
        """
        t = text.strip().lower()
        if t == "llc":
            return cls(ScopeKind.CACHE, None)
        level: Optional[int] = None
        if "level(" in t:
            head, _, rest = t.partition("level(")
            num, _, tail = rest.partition(")")
            if tail.strip():
                raise ValueError(f"malformed scope spec: {text!r}")
            t = head.strip()
            level = int(num)
        elif "(" in t:
            head, _, rest = t.partition("(")
            num, _, tail = rest.partition(")")
            if tail.strip():
                raise ValueError(f"malformed scope spec: {text!r}")
            t = head.strip()
            level = int(num)
        try:
            kind = ScopeKind(t)
        except ValueError:
            raise ValueError(f"unknown scope kind: {text!r}") from None
        return cls(kind, level)


def scope_rank(spec: ScopeSpec, llc_level: int) -> int:
    """Total-order rank of a scope spec; larger rank = wider scope.

    ``llc_level`` is the machine's last cache level, needed to place a
    default (``level=None``) cache scope.  A cache scope at the LLC still
    ranks *below* numa/node: on machines where they coincide the scope
    instances are identical anyway, and the paper calls node the largest
    and core the smallest scope.
    """
    base = _KIND_BASE[spec.kind]
    if spec.kind is ScopeKind.CACHE:
        level = spec.level if spec.level is not None else llc_level
        if not 1 <= level <= llc_level:
            raise ValueError(f"cache level {level} outside 1..{llc_level}")
        return base + level
    if spec.kind is ScopeKind.NUMA:
        # Higher NUMA levels are wider; level None = innermost = level 1.
        level = spec.level if spec.level is not None else 1
        return base + level
    return base


@dataclass(frozen=True)
class ScopeInstance:
    """One concrete instance of a scope on a machine.

    For example, with 4 sockets per node the ``numa`` scope has 4
    instances per node; two tasks share an HLS variable of scope
    ``numa`` iff their processing units map to the same instance.

    ``index`` is machine-global and dense within (kind, level).
    """

    spec: ScopeSpec
    index: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.spec}#{self.index}"


__all__ = ["ScopeKind", "ScopeSpec", "ScopeInstance", "scope_rank"]
