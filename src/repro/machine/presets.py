"""Machine presets mirroring the paper's testbeds.

Two real platforms appear in the evaluation:

* Section V-A (Table I, Figure 3): one node with 4 Nehalem-EX sockets
  (Intel Xeon X7550 @ 2.00GHz), 8 cores per socket, 18MB shared L3 per
  socket.  On this node NUMA == socket, so ``hls numa`` and
  ``hls cache level(llc)`` coincide -- a property tests assert.
* Section V-B (Tables II-IV): an InfiniBand cluster of up to 92 nodes
  with 2 Intel Xeon E5462 (Core2 quad) per node, 8 cores per node.

Scaled-down variants are provided for fast tests: the simulator works at
cache-line granularity, so shrinking sizes by a constant factor
preserves the fits-in-cache / does-not-fit structure the experiments
rely on.
"""

from __future__ import annotations

from repro.machine.topology import CacheSpec, Machine, build_machine


def nehalem_ex_node(*, scale: int = 1, smt: int = 1) -> Machine:
    """The 4-socket Nehalem-EX node of section V-A.

    ``scale`` divides every cache size (keeping line size and latency),
    letting tests and CI run the Table I / Figure 3 workloads on
    proportionally smaller footprints.  ``scale=1`` is the paper's
    geometry: L1 32KB/8-way, L2 256KB/8-way, L3 18MB/24-way shared by
    the 8 cores of a socket.
    """
    if scale < 1:
        raise ValueError("scale must be >= 1")
    caches = [
        CacheSpec(level=1, size_bytes=max(32 << 10, 32 << 10) // scale,
                  line_bytes=64, associativity=8, latency_cycles=4,
                  shared_cores=1),
        CacheSpec(level=2, size_bytes=(256 << 10) // scale,
                  line_bytes=64, associativity=8, latency_cycles=10,
                  shared_cores=1),
        CacheSpec(level=3, size_bytes=(18 << 20) // scale // (64 * 24) * (64 * 24),
                  line_bytes=64, associativity=24, latency_cycles=40,
                  shared_cores=8),
    ]
    return build_machine(
        n_nodes=1,
        sockets_per_node=4,
        cores_per_socket=8,
        smt=smt,
        caches=caches,
        dram_bytes_per_node=128 << 30,
        mem_latency_cycles=220,
        mem_bandwidth_lines_per_cycle=0.4,
        numa_levels=1,
        name=f"nehalem-ex-4s{'' if scale == 1 else f'/scale{scale}'}",
    )


def core2_cluster(n_nodes: int = 92, *, dram_bytes_per_node: int = 16 << 30) -> Machine:
    """The Core2-quad InfiniBand cluster of section V-B.

    2 sockets per node, 4 cores per socket (8 cores/node, matching the
    "memory reduction of a factor 8 for HLS scope node" expectation).
    The Core2 quad has no L3; each pair of cores shares a 6MB L2.
    """
    caches = [
        CacheSpec(level=1, size_bytes=32 << 10, line_bytes=64,
                  associativity=8, latency_cycles=3, shared_cores=1),
        CacheSpec(level=2, size_bytes=6 << 20, line_bytes=64,
                  associativity=24, latency_cycles=15, shared_cores=2),
    ]
    return build_machine(
        n_nodes=n_nodes,
        sockets_per_node=2,
        cores_per_socket=4,
        smt=1,
        caches=caches,
        dram_bytes_per_node=dram_bytes_per_node,
        mem_latency_cycles=200,
        mem_bandwidth_lines_per_cycle=0.5,
        numa_levels=1,
        name=f"core2-cluster-{n_nodes}n",
    )


def small_test_machine(
    *, n_nodes: int = 1, sockets_per_node: int = 2, cores_per_socket: int = 2,
    smt: int = 1,
) -> Machine:
    """A tiny machine with small caches for unit tests.

    L1 private 1KB, L2 (LLC) 8KB shared per socket; geometry defaults to
    2 sockets x 2 cores.
    """
    caches = [
        CacheSpec(level=1, size_bytes=1 << 10, line_bytes=64,
                  associativity=2, latency_cycles=2, shared_cores=1),
        CacheSpec(level=2, size_bytes=8 << 10, line_bytes=64,
                  associativity=4, latency_cycles=10,
                  shared_cores=cores_per_socket),
    ]
    return build_machine(
        n_nodes=n_nodes,
        sockets_per_node=sockets_per_node,
        cores_per_socket=cores_per_socket,
        smt=smt,
        caches=caches,
        dram_bytes_per_node=1 << 30,
        mem_latency_cycles=100,
        mem_bandwidth_lines_per_cycle=0.5,
        numa_levels=1,
        name="small-test",
    )


__all__ = ["nehalem_ex_node", "core2_cluster", "small_test_machine"]
