"""Simulated machine topology: nodes, NUMA sockets, caches, cores.

This package models the hardware the paper evaluates on.  HLS scopes
(``node``, ``numa``, ``cache level(L)``, ``core``) are resolved against a
:class:`~repro.machine.topology.Machine` instance: two MPI tasks share an HLS
variable iff the processing units they are pinned to belong to the same
*scope instance* (e.g. the same socket for the ``numa`` scope).

Presets mirror the paper's two testbeds:

* :func:`~repro.machine.presets.nehalem_ex_node` -- the 4-socket
  Nehalem-EX node (4 x 8 cores, 18MB shared L3 per socket) used for the
  cache-footprint experiments (Table I, Figure 3).
* :func:`~repro.machine.presets.core2_cluster` -- the InfiniBand cluster of
  dual Core2-quad nodes (8 cores/node) used for the memory-footprint
  experiments (Tables II-IV).
"""

from repro.machine.scopes import ScopeKind, ScopeSpec, ScopeInstance, scope_rank
from repro.machine.topology import (
    CacheSpec,
    ProcessingUnit,
    Machine,
    build_machine,
)
from repro.machine.presets import (
    nehalem_ex_node,
    core2_cluster,
    small_test_machine,
)

__all__ = [
    "ScopeKind",
    "ScopeSpec",
    "ScopeInstance",
    "scope_rank",
    "CacheSpec",
    "ProcessingUnit",
    "Machine",
    "build_machine",
    "nehalem_ex_node",
    "core2_cluster",
    "small_test_machine",
]
