"""Machine topology model.

A :class:`Machine` is a cluster of identical *nodes*; each node holds
``sockets_per_node`` sockets (one socket == one NUMA domain, as on the
paper's Nehalem-EX testbed), each socket holds ``cores_per_socket``
physical cores, and each core exposes ``smt`` hardware threads
(*processing units*, PUs).  MPI tasks are pinned to PUs.

Caches are described by :class:`CacheSpec`; each level is either private
per core or shared by a group of cores within a socket.  The machine
exposes scope-instance resolution used by the HLS runtime: given a PU and
a :class:`~repro.machine.scopes.ScopeSpec`, return the scope instance the
PU belongs to and the set of PUs sharing it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.machine.scopes import ScopeInstance, ScopeKind, ScopeSpec, scope_rank


@dataclass(frozen=True)
class CacheSpec:
    """Geometry and cost of one cache level.

    ``shared_cores`` is the number of *physical cores* sharing one cache
    instance: 1 for a private L1/L2, ``cores_per_socket`` for a socket-wide
    LLC, 2 for the paired L2 of a Core2-quad.  Instances never span
    sockets.
    """

    level: int
    size_bytes: int
    line_bytes: int
    associativity: int
    latency_cycles: int
    shared_cores: int = 1

    def __post_init__(self) -> None:
        if self.level < 1:
            raise ValueError("cache level must be >= 1")
        if self.size_bytes <= 0 or self.line_bytes <= 0:
            raise ValueError("cache and line sizes must be positive")
        if self.size_bytes % self.line_bytes:
            raise ValueError("cache size must be a multiple of the line size")
        n_lines = self.size_bytes // self.line_bytes
        if self.associativity < 1 or n_lines % self.associativity:
            raise ValueError(
                f"associativity {self.associativity} does not divide "
                f"{n_lines} lines"
            )
        if self.shared_cores < 1:
            raise ValueError("shared_cores must be >= 1")

    @property
    def n_sets(self) -> int:
        return self.size_bytes // self.line_bytes // self.associativity


@dataclass(frozen=True)
class ProcessingUnit:
    """One hardware thread; the unit MPI tasks are pinned to."""

    gid: int                      # machine-global PU index
    node: int                     # machine-global node index
    numa: int                     # machine-global socket/NUMA index
    core: int                     # machine-global physical-core index
    smt: int                      # hardware-thread slot within the core
    cache_instance: Tuple[Tuple[int, int], ...]  # ((level, global cache id), ...)

    def cache_id(self, level: int) -> int:
        for lvl, cid in self.cache_instance:
            if lvl == level:
                return cid
        raise KeyError(f"PU {self.gid} has no cache at level {level}")


class Machine:
    """A simulated cluster; see module docstring.

    Use :func:`build_machine` or a preset from
    :mod:`repro.machine.presets` rather than constructing directly.
    """

    def __init__(
        self,
        *,
        n_nodes: int,
        sockets_per_node: int,
        cores_per_socket: int,
        smt: int,
        caches: Sequence[CacheSpec],
        dram_bytes_per_node: int,
        mem_latency_cycles: int,
        mem_bandwidth_lines_per_cycle: float,
        numa_levels: int = 1,
        name: str = "machine",
    ) -> None:
        if n_nodes < 1 or sockets_per_node < 1 or cores_per_socket < 1 or smt < 1:
            raise ValueError("topology extents must be >= 1")
        if numa_levels not in (1, 2):
            raise ValueError("numa_levels must be 1 (socket) or 2 (socket+node)")
        levels = sorted(c.level for c in caches)
        if levels != list(range(1, len(levels) + 1)):
            raise ValueError(f"cache levels must be contiguous from 1, got {levels}")
        for c in caches:
            if c.shared_cores > cores_per_socket or cores_per_socket % c.shared_cores:
                raise ValueError(
                    f"L{c.level} shared_cores={c.shared_cores} must divide "
                    f"cores_per_socket={cores_per_socket}"
                )
        self.name = name
        self.n_nodes = n_nodes
        self.sockets_per_node = sockets_per_node
        self.cores_per_socket = cores_per_socket
        self.smt = smt
        self.numa_levels = numa_levels
        self.caches: Dict[int, CacheSpec] = {c.level: c for c in sorted(caches, key=lambda c: c.level)}
        self.llc_level = max(self.caches) if self.caches else 0
        self.dram_bytes_per_node = dram_bytes_per_node
        self.mem_latency_cycles = mem_latency_cycles
        self.mem_bandwidth_lines_per_cycle = mem_bandwidth_lines_per_cycle

        self.pus: List[ProcessingUnit] = []
        cores_per_node = sockets_per_node * cores_per_socket
        for node in range(n_nodes):
            for sck in range(sockets_per_node):
                numa = node * sockets_per_node + sck
                for c in range(cores_per_socket):
                    core = node * cores_per_node + sck * cores_per_socket + c
                    cache_ids = []
                    for spec in self.caches.values():
                        per_socket = cores_per_socket // spec.shared_cores
                        cid = numa * per_socket + c // spec.shared_cores
                        cache_ids.append((spec.level, cid))
                    for s in range(smt):
                        self.pus.append(
                            ProcessingUnit(
                                gid=len(self.pus),
                                node=node,
                                numa=numa,
                                core=core,
                                smt=s,
                                cache_instance=tuple(cache_ids),
                            )
                        )
        self._members_cache: Dict[ScopeInstance, Tuple[int, ...]] = {}

    # ------------------------------------------------------------------ sizes
    @property
    def n_pus(self) -> int:
        return len(self.pus)

    @property
    def n_sockets(self) -> int:
        return self.n_nodes * self.sockets_per_node

    @property
    def n_cores(self) -> int:
        return self.n_sockets * self.cores_per_socket

    @property
    def pus_per_node(self) -> int:
        return self.sockets_per_node * self.cores_per_socket * self.smt

    def cache_instances(self, level: int) -> int:
        """Number of cache instances machine-wide at ``level``."""
        spec = self.caches[level]
        return self.n_sockets * (self.cores_per_socket // spec.shared_cores)

    # ---------------------------------------------------------------- scopes
    def scope_rank(self, spec: ScopeSpec) -> int:
        return scope_rank(spec, self.llc_level)

    def widest(self, specs: Sequence[ScopeSpec]) -> ScopeSpec:
        """The largest scope among ``specs`` (hls barrier semantics)."""
        if not specs:
            raise ValueError("empty scope list")
        return max(specs, key=self.scope_rank)

    def scope_instance(self, pu_gid: int, spec: ScopeSpec) -> ScopeInstance:
        """The scope instance PU ``pu_gid`` belongs to for ``spec``."""
        pu = self.pus[pu_gid]
        kind = spec.kind
        if kind is ScopeKind.NODE:
            return ScopeInstance(spec, pu.node)
        if kind is ScopeKind.NUMA:
            level = spec.level if spec.level is not None else 1
            if level > self.numa_levels:
                raise ValueError(
                    f"machine {self.name!r} has {self.numa_levels} NUMA level(s), "
                    f"got level({level})"
                )
            return ScopeInstance(spec, pu.node if level == 2 else pu.numa)
        if kind is ScopeKind.CACHE:
            level = spec.level if spec.level is not None else self.llc_level
            if level not in self.caches:
                raise ValueError(f"machine {self.name!r} has no L{level} cache")
            return ScopeInstance(spec, pu.cache_id(level))
        if kind is ScopeKind.CORE:
            return ScopeInstance(spec, pu.core)
        raise AssertionError(kind)

    def canonical_scope(self, spec: ScopeSpec) -> ScopeSpec:
        """``spec`` with default (``None``) levels resolved: the LLC for
        ``cache``, the innermost domain for ``numa``.  Two specs naming
        the same physical scope canonicalise identically, which is what
        lets the memory arena layer key one arena per *physical* scope
        instance (``"cache"`` and ``"cache(llc)"`` must not get two)."""
        if spec.kind is ScopeKind.CACHE and spec.level is None:
            if not self.caches:
                raise ValueError(f"machine {self.name!r} has no caches")
            return ScopeSpec(spec.kind, self.llc_level)
        if spec.kind is ScopeKind.NUMA and spec.level is None:
            return ScopeSpec(spec.kind, 1)
        return spec

    def scope_instance_node(self, instance: ScopeInstance) -> int:
        """The machine node an instance lives on (scopes never span
        nodes), used to attribute per-scope arenas to node footprints."""
        spec, index = instance.spec, instance.index
        kind = spec.kind
        if kind is ScopeKind.NODE:
            return index
        if kind is ScopeKind.NUMA:
            level = spec.level if spec.level is not None else 1
            return index if level == 2 else index // self.sockets_per_node
        if kind is ScopeKind.CACHE:
            level = spec.level if spec.level is not None else self.llc_level
            spec_ = self.caches[level]
            per_socket = self.cores_per_socket // spec_.shared_cores
            return index // per_socket // self.sockets_per_node
        if kind is ScopeKind.CORE:
            return index // (self.sockets_per_node * self.cores_per_socket)
        raise AssertionError(kind)

    def scope_members(self, instance: ScopeInstance) -> Tuple[int, ...]:
        """All PU gids belonging to ``instance`` (cached)."""
        got = self._members_cache.get(instance)
        if got is None:
            got = tuple(
                pu.gid
                for pu in self.pus
                if self.scope_instance(pu.gid, instance.spec) == instance
            )
            self._members_cache[instance] = got
        return got

    def scope_instances(self, spec: ScopeSpec) -> List[ScopeInstance]:
        """All distinct instances of ``spec`` on this machine."""
        seen: Dict[ScopeInstance, None] = {}
        for pu in self.pus:
            seen.setdefault(self.scope_instance(pu.gid, spec), None)
        return list(seen)

    def same_scope(self, pu_a: int, pu_b: int, spec: ScopeSpec) -> bool:
        return self.scope_instance(pu_a, spec) == self.scope_instance(pu_b, spec)

    # ------------------------------------------------------------- rendering
    def ascii_diagram(self, *, max_nodes: int = 2) -> str:
        """Figure-1-style ASCII rendering of the topology and scopes."""
        lines = [f"machine {self.name!r}: {self.n_nodes} node(s)"]
        for node in range(min(self.n_nodes, max_nodes)):
            lines.append(f"  node {node}  [scope node#{node}]")
            for sck in range(self.sockets_per_node):
                numa = node * self.sockets_per_node + sck
                llc = ""
                if self.llc_level:
                    spec = self.caches[self.llc_level]
                    first_core = numa * self.cores_per_socket
                    cid = self.pus[
                        first_core * self.smt
                    ].cache_id(self.llc_level)
                    llc = (
                        f"  L{self.llc_level} {spec.size_bytes // (1 << 20)}MB"
                        f" [scope cache#{cid}]"
                    )
                lines.append(f"    socket {sck}  [scope numa#{numa}]{llc}")
                cores = [
                    f"c{numa * self.cores_per_socket + c}"
                    for c in range(self.cores_per_socket)
                ]
                lines.append("      cores: " + " ".join(cores))
        if self.n_nodes > max_nodes:
            lines.append(f"  ... {self.n_nodes - max_nodes} more node(s)")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Machine({self.name!r}, nodes={self.n_nodes}, "
            f"sockets/node={self.sockets_per_node}, "
            f"cores/socket={self.cores_per_socket}, smt={self.smt})"
        )


def build_machine(
    *,
    n_nodes: int = 1,
    sockets_per_node: int = 1,
    cores_per_socket: int = 4,
    smt: int = 1,
    caches: Sequence[CacheSpec] = (),
    dram_bytes_per_node: int = 16 << 30,
    mem_latency_cycles: int = 200,
    mem_bandwidth_lines_per_cycle: float = 0.5,
    numa_levels: int = 1,
    name: str = "machine",
) -> Machine:
    """Convenience constructor; see :class:`Machine` for parameters."""
    return Machine(
        n_nodes=n_nodes,
        sockets_per_node=sockets_per_node,
        cores_per_socket=cores_per_socket,
        smt=smt,
        caches=caches,
        dram_bytes_per_node=dram_bytes_per_node,
        mem_latency_cycles=mem_latency_cycles,
        mem_bandwidth_lines_per_cycle=mem_bandwidth_lines_per_cycle,
        numa_levels=numa_levels,
        name=name,
    )


__all__ = ["CacheSpec", "ProcessingUnit", "Machine", "build_machine"]
