"""Mapping communicators onto the memory hierarchy.

The hierarchical collectives engine (:mod:`repro.runtime.collectives`)
synchronises tasks in per-scope groups -- tasks sharing a core first,
then a cache, then a NUMA socket, then a node -- and only one
representative per group crosses into the next, wider scope.  This
module derives that nesting from a :class:`~repro.machine.topology.Machine`
and the PU pinning of a communicator's members.

:func:`collective_levels` returns the chain of partitions, innermost
first.  Each level is a strict coarsening of the previous one (the
topology guarantees a core never spans a cache, a cache never spans a
socket, and a socket never spans a node); degenerate levels -- those
that group nothing beyond the previous level -- are dropped, and the
chain always ends with a single group covering the whole communicator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple

from repro.machine.topology import Machine


@dataclass(frozen=True)
class TreeLevel:
    """One level of a collective tree: a partition of communicator ranks.

    ``groups`` are sorted by their smallest member; members are sorted.
    ``label`` names the scope the partition came from (``core``,
    ``cache<L>``, ``numa``, ``node``, ``comm``) and keys the per-level
    metrics counters.
    """

    label: str
    groups: Tuple[Tuple[int, ...], ...]

    @property
    def n_groups(self) -> int:
        return len(self.groups)


def _partition(
    ranks: Sequence[int], key: Callable[[int], object]
) -> Tuple[Tuple[int, ...], ...]:
    by_key: Dict[object, List[int]] = {}
    for r in ranks:
        by_key.setdefault(key(r), []).append(r)
    groups = [tuple(sorted(g)) for g in by_key.values()]
    groups.sort(key=lambda g: g[0])
    return tuple(groups)


def collective_levels(
    machine: Machine, pus: Sequence[int]
) -> List[TreeLevel]:
    """The scope-group chain for a communicator.

    ``pus[i]`` is the PU gid communicator rank ``i`` is pinned to.
    Returns at least one level; the last level always has exactly one
    group spanning every rank.
    """
    n = len(pus)
    if n < 1:
        raise ValueError("communicator must have at least one rank")
    for pu in pus:
        if not 0 <= pu < machine.n_pus:
            raise ValueError(f"pinning references unknown PU {pu}")
    ranks = list(range(n))

    chain: List[Tuple[str, Callable[[int], object]]] = [
        ("core", lambda r: machine.pus[pus[r]].core)
    ]
    for level in sorted(machine.caches):
        chain.append(
            ("cache%d" % level,
             lambda r, lvl=level: machine.pus[pus[r]].cache_id(lvl))
        )
    chain.append(("numa", lambda r: machine.pus[pus[r]].numa))
    chain.append(("node", lambda r: machine.pus[pus[r]].node))
    chain.append(("comm", lambda r: 0))

    levels: List[TreeLevel] = []
    prev = tuple((r,) for r in ranks)
    for label, key in chain:
        part = _partition(ranks, key)
        if part == prev:
            continue                      # groups nothing new
        levels.append(TreeLevel(label, part))
        prev = part
        if len(part) == 1:
            break                         # already spans the communicator
    if not levels or len(levels[-1].groups) != 1:
        levels.append(TreeLevel("comm", (tuple(ranks),)))
    return levels


__all__ = ["TreeLevel", "collective_levels"]
