"""Hierarchical local storage, tier two: file-backed chunk stores.

The out-of-core and checkpoint/restart layer (after *MPI Windows on
Storage*, arXiv:1810.04110): a :class:`ChunkStore` persists named 1-D
arrays as versioned chunk files under an atomically-committed manifest;
a :class:`ChunkedArray` caches chunks in arena-charged memory behind
per-chunk locks (:class:`ChunkSynchronizer`); a :class:`SpillManager`
pages cold chunks out when an arena overruns its live-bytes capacity.
``Win.allocate_storage`` builds RMA windows on top, with every fence a
durable checkpoint, and ``Runtime.restore_storage`` reopens a manifest
to resume from the last completed fence epoch.
"""

from repro.storage.array import ChunkedArray
from repro.storage.chunkstore import (
    DEFAULT_CHUNK_ELEMS,
    ChunkStore,
    StorageError,
)
from repro.storage.residency import SpillManager
from repro.storage.sync import ChunkSynchronizer

__all__ = [
    "ChunkedArray",
    "ChunkStore",
    "ChunkSynchronizer",
    "DEFAULT_CHUNK_ELEMS",
    "SpillManager",
    "StorageError",
]
