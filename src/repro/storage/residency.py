"""Residency tracking and LRU spill for storage-backed chunks.

One :class:`SpillManager` per runtime.  Every resident chunk of every
registered :class:`~repro.storage.array.ChunkedArray` has an entry in
one global LRU (an ``OrderedDict`` keyed ``(array_uid, chunk_idx)``,
recency = insertion order with ``move_to_end`` on touch).  When an
:class:`~repro.memory.arena.Arena` overruns its live-bytes *capacity*,
its ``alloc`` retry loop calls :meth:`reclaim`, which walks the LRU
from cold to hot, try-locks each candidate chunk (skipping chunks
pinned by in-flight spans -- a non-blocking acquire can never deadlock
against an operation that already holds locks), writes dirty data back
to the chunk's store and frees its arena charge, until enough bytes are
free or the LRU runs dry.

Determinism: recency is a monotonic counter bumped under one lock, so
under ``backend="coop"`` (one runnable task at a time, virtual clock)
the touch order -- and therefore the spill order recorded in
``spill_log`` -- is a pure function of the schedule seed.  The
deterministic-spill test asserts exactly that.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Dict, List, Optional, Tuple


class SpillManager:
    """Global chunk-residency LRU + spill policy for one runtime."""

    def __init__(self, runtime: Any = None) -> None:
        self.runtime = runtime
        self._lock = threading.Lock()
        #: (array_uid, chunk_idx) -> nbytes, coldest first
        self._lru: "OrderedDict[Tuple[int, int], int]" = OrderedDict()
        #: array_uid -> ChunkedArray
        self._arrays: Dict[int, Any] = {}
        # counters (guarded by self._lock)
        self.spills = 0
        self.spill_bytes = 0
        self.faults = 0
        self.fault_bytes = 0
        self.resident_bytes = 0
        self.peak_resident_bytes = 0
        #: (array_name, chunk_idx) in eviction order -- the determinism
        #: witness the coop spill test compares across runs
        self.spill_log: List[Tuple[str, int]] = []

    # ------------------------------------------------------------- registry
    def register_array(self, array: Any) -> None:
        with self._lock:
            self._arrays[array.uid] = array

    def unregister_array(self, array: Any) -> None:
        with self._lock:
            self._arrays.pop(array.uid, None)
            stale = [k for k in self._lru if k[0] == array.uid]
            for key in stale:
                self.resident_bytes -= self._lru.pop(key)

    # ----------------------------------------------------------- accounting
    def charge(self, array: Any, idx: int, nbytes: int) -> None:
        """A chunk became resident (caller holds its chunk lock)."""
        with self._lock:
            self._lru[(array.uid, idx)] = nbytes
            self._lru.move_to_end((array.uid, idx))
            self.resident_bytes += nbytes
            self.peak_resident_bytes = max(
                self.peak_resident_bytes, self.resident_bytes
            )

    def discharge(self, array: Any, idx: int, nbytes: int) -> None:
        """A chunk left memory by a non-spill path (close)."""
        with self._lock:
            if self._lru.pop((array.uid, idx), None) is not None:
                self.resident_bytes -= nbytes

    def touch(self, array: Any, idx: int) -> None:
        """Mark a resident chunk most-recently-used."""
        with self._lock:
            if (array.uid, idx) in self._lru:
                self._lru.move_to_end((array.uid, idx))

    def count_fault(self, nbytes: int) -> None:
        """A chunk was faulted back in from the store."""
        with self._lock:
            self.faults += 1
            self.fault_bytes += nbytes

    # ---------------------------------------------------------------- spill
    def reclaim(self, arena: Any, need: int) -> int:
        """Evict cold chunks charged to ``arena`` until ``need`` bytes
        are free (or no evictable candidate remains).  Returns the
        bytes actually freed; 0 tells the arena to re-raise."""
        with self._lock:
            candidates = list(self._lru.keys())
        freed = 0
        task = self._current_task()
        for key in candidates:
            if freed >= need:
                break
            with self._lock:
                nbytes = self._lru.get(key)
                array = self._arrays.get(key[0])
            if nbytes is None or array is None:
                continue
            if array.arena is not arena:
                continue
            uid, idx = key
            # non-blocking: a chunk pinned by an in-flight span (maybe
            # our own caller's) is simply skipped -- never a deadlock
            if not array.sync.try_acquire(idx):
                continue
            try:
                with self._lock:
                    if self._lru.pop(key, None) is None:
                        continue  # lost a race with close()
                    self.resident_bytes -= nbytes
                got = array.evict_locked(idx, task=task)
            finally:
                array.sync.release(idx)
            if got:
                freed += got
                with self._lock:
                    self.spills += 1
                    self.spill_bytes += got
                    self.spill_log.append((array.name, idx))
        return freed

    def _current_task(self) -> int:
        rt = self.runtime
        if rt is None:
            return 0
        ct = getattr(rt, "current_task", None)
        if ct is None:
            return 0
        try:
            task = ct() if callable(ct) else ct
        except Exception:
            return 0
        return int(task) if task is not None else 0

    # ------------------------------------------------------------ reporting
    def resident_chunk_count(self) -> int:
        with self._lock:
            return len(self._lru)

    def counters(self) -> Dict[str, int]:
        with self._lock:
            return {
                "spills": self.spills,
                "spill_bytes": self.spill_bytes,
                "faults": self.faults,
                "fault_bytes": self.fault_bytes,
                "resident_bytes": self.resident_bytes,
                "peak_resident_bytes": self.peak_resident_bytes,
                "resident_chunks": len(self._lru),
            }


__all__ = ["SpillManager"]
