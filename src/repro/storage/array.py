"""Chunked array: the in-memory face of a :class:`ChunkStore` array.

One :class:`ChunkedArray` is one named 1-D array in a store, accessed
through a resident-chunk cache whose entries are charged to a real
:class:`~repro.memory.arena.Arena` allocation -- so out-of-core data
obeys the same accounting as every other byte in the simulation, and
arena *capacity* pressure is what drives eviction (via the runtime's
:class:`~repro.storage.residency.SpillManager`).

Locking follows the zarr per-chunk-synchronizer shape: every operation
spans the chunk indices it touches via :class:`ChunkSynchronizer.span`
(sorted acquisition, deadlock-free), and the ``*_locked`` entry points
assume the caller already holds that span -- which is how
``Win`` storage windows compose puts/accumulates/atomics with chunk
residency without ever holding a whole-window lock.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Dict, List, Optional

import numpy as np

from repro.storage.chunkstore import ChunkStore, DEFAULT_CHUNK_ELEMS
from repro.storage.sync import ChunkSynchronizer

_next_uid_lock = threading.Lock()
_next_uid = [0]


def _new_uid() -> int:
    with _next_uid_lock:
        _next_uid[0] += 1
        return _next_uid[0]


class _Chunk:
    """One resident chunk: its data, its arena charge, its dirty bit."""

    __slots__ = ("data", "alloc", "dirty")

    def __init__(self, data: np.ndarray, alloc: Any, dirty: bool) -> None:
        self.data = data
        self.alloc = alloc
        self.dirty = dirty


class ChunkedArray:
    """A 1-D chunked array cached over a :class:`ChunkStore`."""

    def __init__(
        self,
        store: ChunkStore,
        name: str,
        length: int,
        dtype: Any = np.float64,
        chunk_elems: Optional[int] = None,
        *,
        arena: Any = None,
        spill: Any = None,
        owner: Optional[int] = None,
    ) -> None:
        if chunk_elems is None:
            chunk_elems = (
                int(store.array_meta(name)["chunk_elems"])
                if store.has_array(name)
                else DEFAULT_CHUNK_ELEMS
            )
        self.store = store
        self.name = name
        self.length = int(length)
        self.dtype = np.dtype(dtype)
        self.chunk_elems = int(chunk_elems)
        #: arena the resident chunks are charged to (None = unaccounted)
        self.arena = arena
        #: the runtime's SpillManager, tracking residency/LRU (optional)
        self.spill = spill
        #: task rank attributed as the owner of the arena charges
        self.owner = owner
        self.uid = _new_uid()
        self.sync = ChunkSynchronizer()
        self._chunks: Dict[int, _Chunk] = {}
        self._chunks_lock = threading.Lock()
        self._closed = False
        # registers the array (or validates dtype/length/chunking
        # against a previous run's manifest on the restore path)
        store.ensure_array(name, self.length, self.dtype, self.chunk_elems)
        if spill is not None:
            spill.register_array(self)

    # ------------------------------------------------------------- geometry
    @property
    def n_chunks(self) -> int:
        return (self.length + self.chunk_elems - 1) // self.chunk_elems

    @property
    def chunk_bytes(self) -> int:
        return self.chunk_elems * self.dtype.itemsize

    def chunk_range(self, start: int, count: int) -> range:
        """Chunk indices overlapped by ``[start, start+count)``."""
        if count <= 0:
            return range(0)
        return range(start // self.chunk_elems,
                     (start + count - 1) // self.chunk_elems + 1)

    def _chunk_len(self, idx: int) -> int:
        return min(self.chunk_elems, self.length - idx * self.chunk_elems)

    # ------------------------------------------------------------ residency
    def _ensure(self, idx: int, task: int) -> _Chunk:
        """Materialise chunk ``idx`` (caller holds its span lock)."""
        with self._chunks_lock:
            chunk = self._chunks.get(idx)
        if chunk is not None:
            if self.spill is not None:
                self.spill.touch(self, idx)
            return chunk
        n = self._chunk_len(idx)
        nbytes = n * self.dtype.itemsize
        alloc = None
        if self.arena is not None:
            alloc = self.arena.alloc(
                max(nbytes, 1),
                label=f"chunk:{self.name}[{idx}]",
                kind="storage",
                owner=self.owner if self.owner is not None else task,
            )
        try:
            if self.store.has_chunk(self.name, idx):
                data = self.store.read_chunk(self.name, idx, task=task)[:n]
                if self.spill is not None:
                    self.spill.count_fault(nbytes)
            else:
                data = np.zeros(n, dtype=self.dtype)
        except BaseException:
            if alloc is not None:
                self.arena.free(alloc)
            raise
        chunk = _Chunk(np.ascontiguousarray(data, dtype=self.dtype),
                       alloc, dirty=False)
        with self._chunks_lock:
            self._chunks[idx] = chunk
        if self.spill is not None:
            self.spill.charge(self, idx, nbytes)
        return chunk

    def resident_chunks(self) -> List[int]:
        with self._chunks_lock:
            return sorted(self._chunks)

    def evict_locked(self, idx: int, *, task: int = 0) -> int:
        """Write chunk ``idx`` back if dirty and drop it from memory.
        Caller holds the chunk's lock.  Returns bytes freed."""
        with self._chunks_lock:
            chunk = self._chunks.pop(idx, None)
        if chunk is None:
            return 0
        if chunk.dirty:
            self.store.write_chunk(self.name, idx, chunk.data, task=task)
        freed = chunk.data.nbytes
        if chunk.alloc is not None:
            self.arena.free(chunk.alloc)
        return freed

    # ------------------------------------------------------- locked access
    def read_locked(self, start: int, count: int, *, task: int = 0) -> np.ndarray:
        """Copy out ``[start, start+count)`` (caller holds the span)."""
        out = np.empty(count, dtype=self.dtype)
        pos = 0
        for idx in self.chunk_range(start, count):
            chunk = self._ensure(idx, task)
            lo = max(start, idx * self.chunk_elems)
            hi = min(start + count, idx * self.chunk_elems + self._chunk_len(idx))
            off = lo - idx * self.chunk_elems
            out[pos:pos + hi - lo] = chunk.data[off:off + hi - lo]
            pos += hi - lo
        return out

    def write_locked(self, start: int, values: np.ndarray, *, task: int = 0) -> None:
        """Write ``values`` at ``start`` (caller holds the span)."""
        values = np.asarray(values, dtype=self.dtype).reshape(-1)
        count = values.size
        pos = 0
        for idx in self.chunk_range(start, count):
            chunk = self._ensure(idx, task)
            lo = max(start, idx * self.chunk_elems)
            hi = min(start + count, idx * self.chunk_elems + self._chunk_len(idx))
            off = lo - idx * self.chunk_elems
            chunk.data[off:off + hi - lo] = values[pos:pos + hi - lo]
            chunk.dirty = True
            pos += hi - lo

    def rmw_locked(
        self,
        start: int,
        count: int,
        fn: Callable[[np.ndarray], Optional[np.ndarray]],
        *,
        task: int = 0,
    ) -> np.ndarray:
        """Atomic read-modify-write over ``[start, start+count)``
        (caller holds the span): gathers the region, applies ``fn``
        in place (or via its return value), scatters back.  Returns
        the *old* values."""
        old = self.read_locked(start, count, task=task)
        buf = old.copy()
        res = fn(buf)
        if res is not None:
            buf = np.asarray(res, dtype=self.dtype).reshape(-1)
        self.write_locked(start, buf, task=task)
        return old

    # --------------------------------------------------------- maintenance
    def flush(self, *, task: int = 0) -> int:
        """Write every dirty resident chunk back to the store (pending,
        durable at the next commit).  Returns the number written."""
        with self._chunks_lock:
            indices = sorted(self._chunks)
        wrote = 0
        for idx in indices:
            with self.sync.span([idx]):
                with self._chunks_lock:
                    chunk = self._chunks.get(idx)
                if chunk is None or not chunk.dirty:
                    continue
                self.store.write_chunk(self.name, idx, chunk.data, task=task)
                chunk.dirty = False
                wrote += 1
        return wrote

    def close(self, *, task: int = 0) -> None:
        """Drop every resident chunk (freeing its arena charge) and
        deregister from the spill manager.  Dirty data is *not* written
        back -- call :meth:`flush` (and commit) first."""
        if self._closed:
            return
        self._closed = True
        with self._chunks_lock:
            indices = sorted(self._chunks)
        for idx in indices:
            with self.sync.span([idx]):
                with self._chunks_lock:
                    chunk = self._chunks.pop(idx, None)
                if chunk is None:
                    continue
                if chunk.alloc is not None:
                    self.arena.free(chunk.alloc)
                if self.spill is not None:
                    self.spill.discharge(self, idx, chunk.data.nbytes)
        if self.spill is not None:
            self.spill.unregister_array(self)

    # ---------------------------------------------------------- conveniences
    @property
    def size(self) -> int:
        return self.length

    @property
    def nbytes(self) -> int:
        return self.length * self.dtype.itemsize

    def __len__(self) -> int:
        return self.length

    def _chunkwise(self, start: int, count: int, fn) -> None:
        """Run ``fn(lo, hi, off)`` per overlapped chunk, holding only
        that chunk's lock -- so a whole-array access pins at most one
        chunk at a time and never deadlocks the spill path (a span over
        every chunk would pin the full array resident)."""
        ce = self.chunk_elems
        for idx in self.chunk_range(start, count):
            lo = max(start, idx * ce)
            hi = min(start + count, idx * ce + self._chunk_len(idx))
            with self.sync.span([idx]):
                fn(lo, hi, lo - start)

    def __getitem__(self, key):
        start, count = self._key_span(key)
        out = np.empty(count, dtype=self.dtype)

        def read(lo, hi, off):
            out[off:off + hi - lo] = self.read_locked(lo, hi - lo)

        self._chunkwise(start, count, read)
        return out[0] if isinstance(key, (int, np.integer)) else out

    def __setitem__(self, key, value) -> None:
        start, count = self._key_span(key)
        values = np.broadcast_to(
            np.asarray(value, dtype=self.dtype), (count,)
        ).copy()

        def write(lo, hi, off):
            self.write_locked(lo, values[off:off + hi - lo])

        self._chunkwise(start, count, write)

    def __array__(self, dtype=None):
        out = self[0:self.length]
        return out if dtype is None else out.astype(dtype)

    def _key_span(self, key):
        if isinstance(key, slice):
            start, stop, step = key.indices(self.length)
            if step != 1:
                raise IndexError("ChunkedArray supports contiguous slices only")
            return start, max(0, stop - start)
        idx = int(key)
        if idx < 0:
            idx += self.length
        if not 0 <= idx < self.length:
            raise IndexError(f"index {key} out of range for length {self.length}")
        return idx, 1

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ChunkedArray({self.name!r}, length={self.length}, "
            f"dtype={self.dtype}, chunk_elems={self.chunk_elems}, "
            f"resident={len(self._chunks)}/{self.n_chunks})"
        )


__all__ = ["ChunkedArray"]
