"""Chunked, file-backed store with a versioned manifest.

The on-disk unit of the out-of-core and checkpoint/restart layers
(*MPI Windows on Storage*, arXiv:1810.04110): one store is a directory
holding

* ``manifest.json`` -- the **committed** state: for every array its
  dtype / length / chunk size, and for every written chunk the *epoch*
  of its current version plus a CRC32 of its bytes.  The manifest is
  canonical JSON (sorted keys, compact separators) written atomically
  (temp file + ``os.replace``), so two equal stores serialise to the
  identical string and a crash can never leave a half-written manifest.
* ``arrays/<name>/c<idx>.e<epoch>`` -- raw little-endian chunk bytes.
  Chunk files are **write-once per epoch**: a flush for epoch ``E``
  writes fresh ``.e<E>`` files and only the subsequent :meth:`commit`
  points the manifest at them.  A crash between flush and commit
  therefore leaves the previous checkpoint fully intact -- the property
  the chaos restart battery exercises at every fault site.

Concurrency: the store itself takes one internal lock around manifest
and counter mutation; *data* races are the caller's problem, resolved
one level up by the per-chunk synchronizers of
:class:`~repro.storage.array.ChunkedArray` (the zarr
``ThreadSynchronizer`` shape).

Fault sites ``storage.read`` / ``storage.write`` / ``storage.flush``
fire on every chunk read, chunk write and manifest commit, so the chaos
harness can crash a run mid-flush and the restart test can replay it
from the last durable fence.
"""

from __future__ import annotations

import json
import os
import re
import threading
import zlib
from typing import Any, Dict, List, Optional

import numpy as np

MANIFEST_NAME = "manifest.json"
ARRAYS_DIR = "arrays"

#: default chunk size (elements) when neither the array nor the caller
#: picks one
DEFAULT_CHUNK_ELEMS = 1024

_NAME_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._:\-]*$")
_CHUNK_FILE_RE = re.compile(r"^c(\d+)\.e(\d+)$")


class StorageError(RuntimeError):
    """A chunk store operation failed (corrupt manifest, checksum
    mismatch, incompatible array metadata)."""


def _canonical(data: Dict[str, Any]) -> str:
    return json.dumps(data, sort_keys=True, separators=(",", ":"))


class ChunkStore:
    """One chunked, file-backed store rooted at a directory."""

    def __init__(self, root: str, manifest: Dict[str, Any]) -> None:
        self.root = os.fspath(root)
        self._manifest = manifest
        self._lock = threading.Lock()
        #: pending (flushed but uncommitted) chunk versions:
        #: (name, idx) -> {"epoch", "crc", "nbytes"}
        self._pending: Dict[tuple, Dict[str, int]] = {}
        #: the runtime this store is bound to (fault injection + metrics)
        self.runtime: Optional[Any] = None
        # counters (guarded by self._lock)
        self.chunk_reads = 0
        self.chunk_writes = 0
        self.read_bytes = 0
        self.written_bytes = 0
        self.commits = 0

    # ------------------------------------------------------------ lifecycle
    @classmethod
    def create(cls, root, *, overwrite: bool = False) -> "ChunkStore":
        """Create a fresh store directory (must not already hold a
        manifest unless ``overwrite``)."""
        root = os.fspath(root)
        path = os.path.join(root, MANIFEST_NAME)
        if os.path.exists(path) and not overwrite:
            raise StorageError(f"store already exists at {root} (open it)")
        os.makedirs(os.path.join(root, ARRAYS_DIR), exist_ok=True)
        store = cls(root, {"version": 1, "epoch": 0, "arrays": {}})
        store._write_manifest()
        return store

    @classmethod
    def open(cls, root) -> "ChunkStore":
        """Reopen an existing store from its manifest: the state as of
        the last completed :meth:`commit`.  Orphan chunk files left by a
        crashed flush are garbage-collected."""
        root = os.fspath(root)
        path = os.path.join(root, MANIFEST_NAME)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                manifest = json.load(fh)
        except FileNotFoundError:
            raise StorageError(f"no store at {root}: missing {MANIFEST_NAME}")
        except json.JSONDecodeError as exc:
            raise StorageError(f"corrupt manifest at {path}: {exc}")
        if manifest.get("version") != 1:
            raise StorageError(
                f"unsupported store version {manifest.get('version')!r}"
            )
        store = cls(root, manifest)
        store._gc_orphans()
        return store

    def bind(self, runtime: Any) -> "ChunkStore":
        """Bind the store to a runtime: fault-site hits are routed to
        its injector and ``runtime.storage_metrics()`` aggregates this
        store's counters.  Idempotent."""
        with self._lock:
            self.runtime = runtime
        attach = getattr(runtime, "attach_store", None)
        if attach is not None:
            attach(self)
        return self

    # ------------------------------------------------------------- queries
    @property
    def epoch(self) -> int:
        """The last *committed* fence epoch (0 for a fresh store)."""
        with self._lock:
            return int(self._manifest["epoch"])

    @property
    def manifest_path(self) -> str:
        return os.path.join(self.root, MANIFEST_NAME)

    def manifest_json(self) -> str:
        """The committed manifest as its canonical JSON string."""
        with self._lock:
            return _canonical(self._manifest)

    def array_names(self) -> List[str]:
        with self._lock:
            return sorted(self._manifest["arrays"])

    def has_array(self, name: str) -> bool:
        with self._lock:
            return name in self._manifest["arrays"]

    def array_meta(self, name: str) -> Dict[str, Any]:
        with self._lock:
            meta = self._manifest["arrays"].get(name)
            if meta is None:
                raise StorageError(f"no array {name!r} in store")
            return dict(meta, chunks=dict(meta["chunks"]))

    def has_chunk(self, name: str, idx: int) -> bool:
        """Is a version of chunk ``idx`` readable (pending or
        committed)?"""
        with self._lock:
            if (name, int(idx)) in self._pending:
                return True
            meta = self._manifest["arrays"].get(name)
            return meta is not None and str(int(idx)) in meta["chunks"]

    # -------------------------------------------------------------- arrays
    def ensure_array(
        self, name: str, length: int, dtype: Any, chunk_elems: int
    ) -> bool:
        """Register an array, or validate it against an existing
        registration (the restore path).  Returns True when the array
        was newly created."""
        if not _NAME_RE.match(name or ""):
            raise StorageError(
                f"invalid array name {name!r} (use letters, digits, "
                f"'._:-'; must not start with a separator)"
            )
        dt = np.dtype(dtype)
        length = int(length)
        chunk_elems = int(chunk_elems)
        if length < 0:
            raise StorageError("array length must be >= 0")
        if chunk_elems < 1:
            raise StorageError("chunk_elems must be >= 1")
        with self._lock:
            meta = self._manifest["arrays"].get(name)
            if meta is not None:
                if (
                    meta["dtype"] != dt.str
                    or int(meta["length"]) != length
                    or int(meta["chunk_elems"]) != chunk_elems
                ):
                    raise StorageError(
                        f"array {name!r} exists with incompatible metadata "
                        f"(stored dtype={meta['dtype']} length={meta['length']} "
                        f"chunk_elems={meta['chunk_elems']}; requested "
                        f"dtype={dt.str} length={length} "
                        f"chunk_elems={chunk_elems})"
                    )
                return False
            self._manifest["arrays"][name] = {
                "dtype": dt.str,
                "length": length,
                "chunk_elems": chunk_elems,
                "chunks": {},
            }
            # registration is durable immediately (the epoch does not
            # move): a reopen must be able to validate metadata even if
            # no fence ever committed a chunk
            self._write_manifest_locked()
        os.makedirs(self._array_dir(name), exist_ok=True)
        return True

    # --------------------------------------------------------------- chunks
    def read_chunk(self, name: str, idx: int, *, task: int = 0) -> np.ndarray:
        """Read the latest readable version of one chunk (pending wins
        over committed) and validate its checksum."""
        self._hit("storage.read", task)
        idx = int(idx)
        with self._lock:
            meta = self._manifest["arrays"].get(name)
            if meta is None:
                raise StorageError(f"no array {name!r} in store")
            entry = self._pending.get((name, idx))
            if entry is None:
                entry = meta["chunks"].get(str(idx))
            if entry is None:
                raise StorageError(f"array {name!r} has no chunk {idx}")
            epoch, crc = int(entry["epoch"]), int(entry["crc"])
            dt = np.dtype(meta["dtype"])
        path = self._chunk_path(name, idx, epoch)
        try:
            with open(path, "rb") as fh:
                raw = fh.read()
        except FileNotFoundError:
            raise StorageError(
                f"chunk file missing for {name!r}[{idx}] epoch {epoch}"
            )
        if zlib.crc32(raw) & 0xFFFFFFFF != crc:
            raise StorageError(
                f"checksum mismatch reading {name!r}[{idx}] epoch {epoch}"
            )
        data = np.frombuffer(raw, dtype=dt).copy()
        with self._lock:
            self.chunk_reads += 1
            self.read_bytes += len(raw)
        return data

    def write_chunk(
        self, name: str, idx: int, data: np.ndarray, *, task: int = 0
    ) -> None:
        """Write one chunk as a *pending* version for the next epoch.
        Not durable until :meth:`commit` folds it into the manifest."""
        self._hit("storage.write", task)
        idx = int(idx)
        with self._lock:
            meta = self._manifest["arrays"].get(name)
            if meta is None:
                raise StorageError(f"no array {name!r} in store")
            dt = np.dtype(meta["dtype"])
            epoch = int(self._manifest["epoch"]) + 1
        arr = np.ascontiguousarray(np.asarray(data, dtype=dt))
        raw = arr.tobytes()
        path = self._chunk_path(name, idx, epoch)
        with open(path, "wb") as fh:
            fh.write(raw)
        with self._lock:
            self._pending[(name, idx)] = {
                "epoch": epoch,
                "crc": zlib.crc32(raw) & 0xFFFFFFFF,
                "nbytes": len(raw),
            }
            self.chunk_writes += 1
            self.written_bytes += len(raw)

    def commit(self, *, task: int = 0) -> int:
        """Fold every pending chunk version into the manifest and write
        it atomically: the fence-as-checkpoint step.  Returns the new
        committed epoch.  A no-op (same epoch) when nothing is pending."""
        self._hit("storage.flush", task)
        with self._lock:
            if not self._pending:
                return int(self._manifest["epoch"])
            epoch = int(self._manifest["epoch"]) + 1
            superseded: List[tuple] = []
            for (name, idx), entry in sorted(self._pending.items()):
                chunks = self._manifest["arrays"][name]["chunks"]
                old = chunks.get(str(idx))
                if old is not None and int(old["epoch"]) != entry["epoch"]:
                    superseded.append((name, idx, int(old["epoch"])))
                chunks[str(idx)] = dict(entry)
            self._pending.clear()
            self._manifest["epoch"] = epoch
            self._write_manifest_locked()
            self.commits += 1
        # best-effort GC of superseded versions, after the commit is
        # durable -- a crash here costs disk space, never data
        for name, idx, old_epoch in superseded:
            try:
                os.unlink(self._chunk_path(name, idx, old_epoch))
            except OSError:
                pass
        return epoch

    # ------------------------------------------------------------ internals
    def _hit(self, site: str, task: int) -> None:
        rt = self.runtime
        faults = getattr(rt, "faults", None) if rt is not None else None
        if faults is not None:
            faults.hit(site, task)

    def _array_dir(self, name: str) -> str:
        return os.path.join(self.root, ARRAYS_DIR, name)

    def _chunk_path(self, name: str, idx: int, epoch: int) -> str:
        return os.path.join(self._array_dir(name), f"c{idx}.e{epoch}")

    def _write_manifest(self) -> None:
        with self._lock:
            self._write_manifest_locked()

    def _write_manifest_locked(self) -> None:
        tmp = self.manifest_path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            fh.write(_canonical(self._manifest))
            fh.write("\n")
        os.replace(tmp, self.manifest_path)

    def _gc_orphans(self) -> None:
        """Delete chunk files not referenced by the committed manifest
        (the residue of a crashed flush)."""
        base = os.path.join(self.root, ARRAYS_DIR)
        if not os.path.isdir(base):
            return
        with self._lock:
            arrays = {
                name: {
                    int(i): int(e["epoch"])
                    for i, e in meta["chunks"].items()
                }
                for name, meta in self._manifest["arrays"].items()
            }
        for name in os.listdir(base):
            adir = os.path.join(base, name)
            if not os.path.isdir(adir):
                continue
            live = arrays.get(name, {})
            for fname in os.listdir(adir):
                m = _CHUNK_FILE_RE.match(fname)
                if m is None:
                    continue
                idx, epoch = int(m.group(1)), int(m.group(2))
                if live.get(idx) != epoch:
                    try:
                        os.unlink(os.path.join(adir, fname))
                    except OSError:
                        pass

    # ------------------------------------------------------------ reporting
    def counters(self) -> Dict[str, int]:
        with self._lock:
            return {
                "chunk_reads": self.chunk_reads,
                "chunk_writes": self.chunk_writes,
                "read_bytes": self.read_bytes,
                "written_bytes": self.written_bytes,
                "commits": self.commits,
                "epoch": int(self._manifest["epoch"]),
                "arrays": len(self._manifest["arrays"]),
            }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ChunkStore({self.root!r}, epoch={self.epoch}, "
            f"arrays={len(self.array_names())})"
        )


__all__ = [
    "ARRAYS_DIR",
    "ChunkStore",
    "DEFAULT_CHUNK_ELEMS",
    "MANIFEST_NAME",
    "StorageError",
]
