"""Per-chunk lock tables (the zarr ``ThreadSynchronizer`` shape).

One :class:`ChunkSynchronizer` guards one keyspace -- for a
storage-backed window segment the keys are chunk indices, for an
in-memory window they are ``(rank, chunk_idx)`` pairs.  Operations that
span several chunks take all their locks through :meth:`span`, which
sorts the keys first so two overlapping multi-chunk operations always
acquire in the same global order (no deadlock, by the classic
lock-ordering argument).

The table also does the wait accounting the contention regression test
asserts on: every acquisition first tries a non-blocking acquire and
counts a *wait* only when that fails, so operations on disjoint chunks
report zero waits where the old whole-window ``data_lock`` would have
serialised them.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Dict, Hashable, Iterable, List, Tuple


class ChunkSynchronizer:
    """Lazy per-key lock table with acquisition/wait counters."""

    def __init__(self) -> None:
        self._master = threading.Lock()
        self._locks: Dict[Hashable, threading.Lock] = {}
        self.acquisitions = 0
        self.waits = 0

    def lock_for(self, key: Hashable) -> threading.Lock:
        with self._master:
            lock = self._locks.get(key)
            if lock is None:
                lock = self._locks[key] = threading.Lock()
            return lock

    def acquire(self, key: Hashable) -> threading.Lock:
        """Acquire one key's lock, counting a wait if it was contended."""
        lock = self.lock_for(key)
        if not lock.acquire(False):
            with self._master:
                self.waits += 1
            lock.acquire()
        with self._master:
            self.acquisitions += 1
        return lock

    def try_acquire(self, key: Hashable) -> bool:
        """Non-blocking acquire; no wait is ever counted.  Used by the
        spill path to skip chunks pinned by in-flight operations."""
        got = self.lock_for(key).acquire(False)
        if got:
            with self._master:
                self.acquisitions += 1
        return got

    def release(self, key: Hashable) -> None:
        self.lock_for(key).release()

    @contextmanager
    def span(self, keys: Iterable[Hashable]):
        """Hold the locks of every key in ``keys`` (deduplicated,
        acquired in sorted order)."""
        ordered: List[Hashable] = sorted(set(keys))
        held: List[Hashable] = []
        try:
            for key in ordered:
                self.acquire(key)
                held.append(key)
            yield
        finally:
            for key in reversed(held):
                self.release(key)

    def counters(self) -> Tuple[int, int]:
        """(acquisitions, waits) so far."""
        with self._master:
            return self.acquisitions, self.waits


__all__ = ["ChunkSynchronizer"]
