"""Access-trace generators for the paper's workloads.

Traces are numpy arrays of *line numbers* ready for
:meth:`~repro.memsim.hierarchy.CacheHierarchy.access_run`.  Generators
cover the three access patterns the evaluation uses:

* uniform random lookups in a table (mesh-update benchmark: "to mimic an
  irregular access pattern, this table is accessed uniformly at random");
* streaming sweeps over an array (mesh traversal, table update);
* a blocked matrix-multiply schedule (Figure 3's dgemm stand-in).
"""

from __future__ import annotations

from typing import Iterator, List, Sequence, Tuple

import numpy as np


def random_table_trace(
    base_addr: int,
    table_bytes: int,
    n_accesses: int,
    rng: np.random.Generator,
    *,
    line_bytes: int = 64,
) -> np.ndarray:
    """Uniform random accesses over a table; returns line numbers."""
    if table_bytes <= 0:
        raise ValueError("table_bytes must be positive")
    first = base_addr // line_bytes
    n_lines = max(1, table_bytes // line_bytes)
    return first + rng.integers(0, n_lines, size=n_accesses)


def stream_trace(
    base_addr: int,
    nbytes: int,
    *,
    line_bytes: int = 64,
    elem_bytes: int = 8,
) -> np.ndarray:
    """Sequential sweep touching each element once; one entry per access
    (so ``line_bytes // elem_bytes`` consecutive duplicates per line,
    matching a real streaming loop's per-element loads)."""
    n_elems = nbytes // elem_bytes
    addrs = base_addr + np.arange(n_elems, dtype=np.int64) * elem_bytes
    return addrs // line_bytes


def stream_lines(base_addr: int, nbytes: int, *, line_bytes: int = 64) -> np.ndarray:
    """Sequential sweep touching each *line* once (cheaper stand-in for a
    vectorised streaming kernel)."""
    first = base_addr // line_bytes
    last = (base_addr + max(nbytes, 1) - 1) // line_bytes
    return np.arange(first, last + 1, dtype=np.int64)


def blocked_matmul_trace(
    a_addr: int,
    b_addr: int,
    c_addr: int,
    n: int,
    *,
    elem_bytes: int = 8,
    block: int = 32,
    line_bytes: int = 64,
) -> np.ndarray:
    """Line trace of a blocked C += A@B schedule on n x n matrices.

    Models an optimised BLAS at *line* granularity: for each block
    triple (i, j, k) the kernel streams the A(i,k), B(k,j) and C(i,j)
    blocks once.  Element-level register reuse inside a block is
    abstracted away -- cache behaviour is governed by block residency,
    which is what Figure 3 is about.
    """
    if n <= 0:
        raise ValueError("matrix size must be positive")
    block = min(block, n)
    elems_per_line = max(1, line_bytes // elem_bytes)
    nb = (n + block - 1) // block

    def block_lines(base: int, bi: int, bj: int) -> np.ndarray:
        rows = range(bi * block, min((bi + 1) * block, n))
        segs = []
        for r in rows:
            start = base + (r * n + bj * block) * elem_bytes
            width = (min((bj + 1) * block, n) - bj * block) * elem_bytes
            first = start // line_bytes
            last = (start + width - 1) // line_bytes
            segs.append(np.arange(first, last + 1, dtype=np.int64))
        return np.concatenate(segs)

    out: List[np.ndarray] = []
    for bi in range(nb):
        for bj in range(nb):
            c_lines = block_lines(c_addr, bi, bj)
            out.append(c_lines)
            for bk in range(nb):
                out.append(block_lines(a_addr, bi, bk))
                out.append(block_lines(b_addr, bk, bj))
            out.append(c_lines)  # write-back touch
    return np.concatenate(out)


def interleave_round_robin(
    traces: Sequence[np.ndarray], *, chunk: int = 64
) -> Iterator[Tuple[int, np.ndarray]]:
    """Interleave per-PU traces in round-robin chunks.

    Yields ``(trace_index, chunk_of_lines)`` so a driver can feed a
    shared :class:`~repro.memsim.hierarchy.CacheHierarchy` in an order
    that approximates concurrent execution.  With uniformly random or
    streaming traces, chunked interleaving is statistically equivalent
    to per-access interleaving while keeping Python overhead per access
    low.
    """
    if chunk < 1:
        raise ValueError("chunk must be >= 1")
    offsets = [0] * len(traces)
    pending = True
    while pending:
        pending = False
        for i, tr in enumerate(traces):
            off = offsets[i]
            if off >= len(tr):
                continue
            yield i, tr[off:off + chunk]
            offsets[i] = off + chunk
            pending = True


__all__ = [
    "random_table_trace",
    "stream_trace",
    "stream_lines",
    "blocked_matmul_trace",
    "interleave_round_robin",
]
