"""Simulated virtual address space and allocator.

Each node of the simulated machine has one address space (the
thread-based runtime shares it among all its MPI tasks; the
process-based baseline gives every task its own).  The allocator is a
simple bump allocator with alignment: addresses are never recycled,
which keeps traces alias-free, while :meth:`AddressSpace.free` still
performs live-bytes accounting so the memory-footprint experiments can
report consumption over time.

Addresses are plain integers; nothing is ever backed by real memory --
only the *layout* matters to the cache simulator and the accountant.
"""

from __future__ import annotations

import threading
from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

PAGE_SIZE = 4096


class AddressSpaceExhausted(MemoryError):
    """A bounded address space ran past its ``limit`` or ``capacity``.

    Raised by :meth:`AddressSpace.alloc` when the space was carved out
    of a fixed region by the base-address registry
    (:mod:`repro.memory`) and the bump pointer would cross the region
    end -- allocations from distinct regions must stay provably
    disjoint, so overflowing into the neighbour is an error, never a
    silent wrap -- or when a live-bytes ``capacity`` budget would be
    exceeded.  ``reason`` distinguishes the two: only ``"capacity"``
    exhaustion is recoverable by freeing (spilling) live allocations,
    because bump addresses are never recycled."""

    def __init__(self, message: str, *, reason: str = "limit") -> None:
        super().__init__(message)
        self.reason = reason


@dataclass(frozen=True)
class Allocation:
    """One live allocation in a simulated address space."""

    addr: int
    size: int
    label: str
    kind: str = "app"       # see repro.memory.KINDS: "app" | "runtime" | "hls" | "rma" | "comm" | "baseline"
    owner: Optional[int] = None  # task rank, or None for node-wide storage

    @property
    def end(self) -> int:
        return self.addr + self.size

    def contains(self, addr: int) -> bool:
        return self.addr <= addr < self.end

    def pages(self) -> range:
        """Page numbers covered by this allocation."""
        first = self.addr // PAGE_SIZE
        last = (self.end - 1) // PAGE_SIZE
        return range(first, last + 1)


class AddressSpace:
    """Bump allocator over a simulated virtual address range.

    Thread-safe: tasks of a node share one space in the thread-based
    runtime, and even per-process spaces receive foreign allocations
    (eager connection buffers posted by the sender's thread)."""

    def __init__(
        self,
        *,
        base: int = 1 << 32,
        name: str = "as",
        limit: Optional[int] = None,
        capacity: Optional[int] = None,
    ) -> None:
        if limit is not None and limit <= base:
            raise ValueError(f"limit {limit:#x} must exceed base {base:#x}")
        self.name = name
        self._base = base
        self._limit = limit
        self._capacity = capacity
        self._next = base
        self._live: Dict[int, Allocation] = {}
        # Bump allocation never recycles addresses, so allocation start
        # addresses only ever grow: appending keeps this list sorted and
        # ``find`` can bisect instead of scanning every live record.
        self._addrs: List[int] = []
        self._freed_bytes = 0
        self._live_bytes = 0
        self._peak_live = 0
        self._lock = threading.Lock()

    @property
    def base(self) -> int:
        return self._base

    @property
    def limit(self) -> Optional[int]:
        return self._limit

    @property
    def capacity(self) -> Optional[int]:
        """Live-bytes budget, or None for unbounded.

        Distinct from ``limit``: the limit bounds the *address range*
        (addresses are never recycled, so the bump pointer only grows),
        while the capacity bounds the *resident* bytes and can be
        relieved by freeing allocations -- which is what lets the
        storage spiller page cold chunks out instead of dying."""
        with self._lock:
            return self._capacity

    def set_capacity(self, capacity: Optional[int]) -> None:
        with self._lock:
            if capacity is not None and capacity < self._live_bytes:
                raise ValueError(
                    f"{self.name}: capacity {capacity}B is below current "
                    f"live bytes {self._live_bytes}B"
                )
            self._capacity = capacity

    # ------------------------------------------------------------------ alloc
    def alloc(
        self,
        size: int,
        *,
        label: str = "",
        kind: str = "app",
        owner: Optional[int] = None,
        align: int = 64,
    ) -> Allocation:
        """Allocate ``size`` bytes aligned to ``align`` and return the record."""
        if size <= 0:
            raise ValueError(f"allocation size must be positive, got {size}")
        if align <= 0 or align & (align - 1):
            raise ValueError(f"alignment must be a positive power of two, got {align}")
        with self._lock:
            addr = (self._next + align - 1) & ~(align - 1)
            if self._limit is not None and addr + size > self._limit:
                raise AddressSpaceExhausted(
                    f"{self.name}: allocation of {size}B at {addr:#x} "
                    f"exceeds the region limit {self._limit:#x}",
                    reason="limit",
                )
            if (
                self._capacity is not None
                and self._live_bytes + size > self._capacity
            ):
                raise AddressSpaceExhausted(
                    f"{self.name}: allocation of {size}B would raise live "
                    f"bytes past the capacity budget {self._capacity}B "
                    f"({self._live_bytes}B resident)",
                    reason="capacity",
                )
            self._next = addr + size
            rec = Allocation(addr=addr, size=size, label=label, kind=kind, owner=owner)
            self._live[addr] = rec
            self._addrs.append(addr)
            self._live_bytes += size
            self._peak_live = max(self._peak_live, self._live_bytes)
        return rec

    def alloc_pages(self, n_pages: int, **kw) -> Allocation:
        """Allocate ``n_pages`` whole pages, page-aligned."""
        kw.setdefault("align", PAGE_SIZE)
        return self.alloc(n_pages * PAGE_SIZE, **kw)

    def free(self, alloc: Allocation) -> None:
        """Release an allocation (accounting only; addresses are not reused)."""
        with self._lock:
            if alloc.addr not in self._live:
                raise KeyError(f"double free or foreign allocation at {alloc.addr:#x}")
            del self._live[alloc.addr]
            self._freed_bytes += alloc.size
            self._live_bytes -= alloc.size

    # -------------------------------------------------------------- inspection
    @property
    def live_bytes(self) -> int:
        with self._lock:
            return self._live_bytes

    @property
    def peak_live_bytes(self) -> int:
        with self._lock:
            return self._peak_live

    @property
    def freed_bytes(self) -> int:
        with self._lock:
            return self._freed_bytes

    def live_allocations(self) -> List[Allocation]:
        with self._lock:
            return list(self._live.values())

    def live_bytes_by_kind(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for a in self.live_allocations():
            out[a.kind] = out.get(a.kind, 0) + a.size
        return out

    def find(self, addr: int) -> Optional[Allocation]:
        """The live allocation containing ``addr``, or None.

        O(log n): allocations are handed out at strictly increasing,
        never-recycled start addresses and never overlap, so the only
        candidate is the live record with the greatest start address
        <= ``addr`` -- found by bisecting the sorted start list."""
        with self._lock:
            i = bisect_right(self._addrs, addr) - 1
            if i < 0:
                return None
            a = self._live.get(self._addrs[i])
            if a is not None and a.contains(addr):
                return a
            return None

    def __len__(self) -> int:
        return len(self._live)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"AddressSpace({self.name!r}, live={self.live_bytes}B "
            f"in {len(self._live)} allocs)"
        )


__all__ = ["AddressSpace", "AddressSpaceExhausted", "Allocation", "PAGE_SIZE"]
