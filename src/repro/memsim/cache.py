"""Set-associative LRU cache model.

Works on *line numbers* (byte address // line size); the hierarchy does
the division once.  Sets are kept as small recency-ordered lists (MRU
first), which beats numpy for the associativities real caches have
(<= 32 ways) and keeps the hot path allocation-free.
"""

from __future__ import annotations

from typing import List, Optional

from repro.machine.topology import CacheSpec


class SetAssociativeCache:
    """One cache instance with LRU replacement.

    Statistics are monotone counters; :attr:`hits` + :attr:`misses`
    equals the number of :meth:`access` calls (an invariant the property
    tests check).
    """

    __slots__ = (
        "spec", "name", "_sets", "_n_sets", "_ways",
        "hits", "misses", "evictions", "invalidations",
    )

    def __init__(self, spec: CacheSpec, *, name: str = "") -> None:
        self.spec = spec
        self.name = name or f"L{spec.level}"
        self._n_sets = spec.n_sets
        self._ways = spec.associativity
        # _sets[s] is a list of line numbers, most recently used first.
        self._sets: List[List[int]] = [[] for _ in range(self._n_sets)]
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    # ------------------------------------------------------------------ hot path
    def access(self, line: int) -> Optional[int]:
        """Touch ``line``; returns None on hit, else the evicted line
        (or -1 when the fill evicted nothing)."""
        s = self._sets[line % self._n_sets]
        try:
            s.remove(line)
        except ValueError:
            self.misses += 1
            s.insert(0, line)
            if len(s) > self._ways:
                self.evictions += 1
                return s.pop()
            return -1
        self.hits += 1
        s.insert(0, line)
        return None

    def probe(self, line: int) -> bool:
        """Does the cache currently hold ``line``?  (No LRU update.)"""
        return line in self._sets[line % self._n_sets]

    def fill(self, line: int) -> Optional[int]:
        """Insert ``line`` as MRU without counting a hit or miss;
        returns the evicted line if any."""
        s = self._sets[line % self._n_sets]
        if line in s:
            s.remove(line)
            s.insert(0, line)
            return None
        s.insert(0, line)
        if len(s) > self._ways:
            self.evictions += 1
            return s.pop()
        return None

    def invalidate(self, line: int) -> bool:
        """Drop ``line`` if present; returns True if it was held."""
        s = self._sets[line % self._n_sets]
        try:
            s.remove(line)
        except ValueError:
            return False
        self.invalidations += 1
        return True

    # ---------------------------------------------------------------- utility
    def flush(self) -> int:
        """Empty the cache; returns how many lines were dropped."""
        n = sum(len(s) for s in self._sets)
        for s in self._sets:
            s.clear()
        return n

    def resident_lines(self) -> int:
        return sum(len(s) for s in self._sets)

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    def reset_stats(self) -> None:
        self.hits = self.misses = self.evictions = self.invalidations = 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SetAssociativeCache({self.name}, {self.spec.size_bytes}B, "
            f"{self._ways}-way, hits={self.hits}, misses={self.misses})"
        )


__all__ = ["SetAssociativeCache"]
