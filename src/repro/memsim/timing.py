"""Latency + bandwidth cost model.

Converts an :class:`~repro.memsim.hierarchy.AccessStats` profile into
cycle counts.  Two effects bound parallel execution time:

* **latency**: each PU's accesses cost the latency of the level that
  served them (remote-cache services cost an interconnect penalty
  between LLC and DRAM latency);
* **bandwidth**: all PUs of a socket share one memory controller, so a
  socket can't drain DRAM lines faster than
  ``mem_bandwidth_lines_per_cycle``.

A socket's time is the max of its slowest PU (latency bound) and its
aggregate DRAM traffic over the controller bandwidth (bandwidth bound);
the run's time is the max over sockets.  This is exactly the effect the
paper invokes: "the sequential program can fully utilize the last level
of cache and the memory bandwidth of the processor whereas the parallel
program shares these resources between 8 cores".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.machine.topology import Machine
from repro.memsim.hierarchy import AccessStats


@dataclass(frozen=True)
class RunTiming:
    """Timing breakdown of one simulated run."""

    cycles: float                     # run time (max over sockets)
    pu_cycles: np.ndarray             # latency-bound cycles per PU
    socket_cycles: Dict[int, float]   # per-socket max(latency, bandwidth)
    bandwidth_bound_sockets: List[int]  # sockets limited by DRAM bandwidth

    def speedup_over(self, seq: "RunTiming") -> float:
        """Speedup of ``seq`` relative to this run (weak-scaling style:
        both runs performed the same per-PU work)."""
        if self.cycles == 0:
            return float("inf")
        return seq.cycles / self.cycles


class TimingModel:
    """Cost model bound to one machine's latencies and bandwidth."""

    def __init__(
        self,
        machine: Machine,
        *,
        remote_latency_cycles: Optional[int] = None,
        write_penalty_cycles: float = 0.0,
        mlp: float = 8.0,
        invalidation_cost_cycles: Optional[float] = None,
    ) -> None:
        """``mlp`` is the memory-level parallelism an out-of-order core
        extracts from its access stream: every level's effective
        per-access latency is ``latency / mlp`` (loads overlap whether
        they hit in L3 or DRAM).  Costs therefore stay *proportional*
        across levels, and with ``mlp`` misses in flight a socket's
        cores can outrun the memory controller, which is what lets the
        bandwidth bound in :meth:`run_timing` engage -- and what makes
        8 MPI tasks per socket contend in the paper's Table I."""
        self.machine = machine
        self.levels = tuple(sorted(machine.caches))
        self.latencies = np.array(
            [machine.caches[lvl].latency_cycles for lvl in self.levels],
            dtype=np.float64,
        )
        self.mem_latency = float(machine.mem_latency_cycles)
        llc_lat = self.latencies[-1] if len(self.latencies) else 0.0
        # Cache-to-cache transfer: costlier than a local LLC hit, cheaper
        # than DRAM.  Default: midway.
        self.remote_latency = (
            float(remote_latency_cycles)
            if remote_latency_cycles is not None
            else (llc_lat + self.mem_latency) / 2.0
        )
        self.write_penalty = float(write_penalty_cycles)
        if mlp < 1.0:
            raise ValueError(f"mlp must be >= 1, got {mlp}")
        self.mlp = float(mlp)
        # A write that invalidates remote copies pays a read-for-ownership
        # round trip, partially hidden by the same MLP as ordinary misses.
        self.invalidation_cost = (
            float(invalidation_cost_cycles)
            if invalidation_cost_cycles is not None
            else self.remote_latency / self.mlp / 8.0
        )
        self.bw_lines_per_cycle = machine.mem_bandwidth_lines_per_cycle

    def pu_cycles(self, stats: AccessStats) -> np.ndarray:
        """Latency-bound cycles per PU."""
        cyc = (stats.hits.astype(np.float64) @ self.latencies) / self.mlp
        cyc += stats.remote * (self.remote_latency / self.mlp)
        cyc += stats.mem * (self.mem_latency / self.mlp)
        cyc += stats.writes * self.write_penalty
        cyc += stats.invalidations_sent * self.invalidation_cost
        return cyc

    def run_timing(self, stats: AccessStats, *, active_pus: Optional[List[int]] = None) -> RunTiming:
        """Timing of a run; ``active_pus`` restricts which PUs count
        (e.g. a sequential run uses a single PU)."""
        m = self.machine
        cyc = self.pu_cycles(stats)
        if active_pus is None:
            active = [p for p in range(m.n_pus) if stats.accesses[p] > 0]
        else:
            active = list(active_pus)
        socket_cycles: Dict[int, float] = {}
        bw_bound: List[int] = []
        by_socket: Dict[int, List[int]] = {}
        for pu in active:
            by_socket.setdefault(m.pus[pu].numa, []).append(pu)
        for sck, pus in by_socket.items():
            lat_bound = max(cyc[p] for p in pus)
            mem_lines = float(sum(stats.mem[p] for p in pus))
            bw_bound_time = (
                mem_lines / self.bw_lines_per_cycle if self.bw_lines_per_cycle > 0 else 0.0
            )
            t = max(lat_bound, bw_bound_time)
            socket_cycles[sck] = t
            if bw_bound_time > lat_bound:
                bw_bound.append(sck)
        total = max(socket_cycles.values()) if socket_cycles else 0.0
        return RunTiming(
            cycles=total,
            pu_cycles=cyc,
            socket_cycles=socket_cycles,
            bandwidth_bound_sockets=sorted(bw_bound),
        )

    def parallel_efficiency(self, seq: RunTiming, par: RunTiming) -> float:
        """Weak-scaling parallel efficiency t_seq / t_par (paper,
        section V-A: each PU performs the sequential program's work)."""
        if par.cycles == 0:
            return 1.0
        return seq.cycles / par.cycles


__all__ = ["TimingModel", "RunTiming"]
