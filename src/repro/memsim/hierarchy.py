"""Multi-core cache hierarchy with write-invalidate coherence.

One :class:`CacheHierarchy` instantiates a
:class:`~repro.memsim.cache.SetAssociativeCache` per cache instance of a
:class:`~repro.machine.topology.Machine` (private L1/L2 per core, shared
LLC per socket, ...) plus a per-level *line directory* mapping each
cached line to the set of instances holding it.  The directory drives a
MESI-style protocol reduced to what the paper's experiments exercise:

* a **write** by one PU invalidates the line in every *other* cache
  instance at every level (cores sharing the writer's LLC keep their LLC
  copy, because it is the same instance -- exactly why the paper's
  ``numa`` scope survives table updates while ``node`` scope does not);
* a **read miss** that finds the line in another socket's cache is
  served remotely (cache-to-cache transfer), cheaper than DRAM but far
  costlier than a local LLC hit.

Service levels: ``1..llc`` = own cache hit at that level,
:data:`REMOTE_LEVEL` = another instance's cache, :data:`MEMORY_LEVEL` =
DRAM.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Set, Tuple

import numpy as np

from repro.machine.topology import Machine
from repro.memsim.cache import SetAssociativeCache

MEMORY_LEVEL = 0
REMOTE_LEVEL = -1


@dataclass
class AccessStats:
    """Per-PU access profile produced by a simulation run.

    ``hits[pu, level-1]`` counts own-hierarchy hits at ``level``;
    ``remote``/``mem`` count remote-cache and DRAM services; ``writes``
    counts write accesses (a subset of the total); ``invalidations_sent``
    counts coherence invalidations triggered by this PU's writes.
    """

    n_pus: int
    llc_level: int
    hits: np.ndarray               # (n_pus, llc_level) int64
    remote: np.ndarray             # (n_pus,) int64
    mem: np.ndarray                # (n_pus,) int64
    writes: np.ndarray             # (n_pus,) int64
    invalidations_sent: np.ndarray  # (n_pus,) int64

    def __sub__(self, other: "AccessStats") -> "AccessStats":
        """Stats delta (e.g. one phase of a phased simulation)."""
        return AccessStats(
            n_pus=self.n_pus,
            llc_level=self.llc_level,
            hits=self.hits - other.hits,
            remote=self.remote - other.remote,
            mem=self.mem - other.mem,
            writes=self.writes - other.writes,
            invalidations_sent=self.invalidations_sent - other.invalidations_sent,
        )

    @property
    def accesses(self) -> np.ndarray:
        return self.hits.sum(axis=1) + self.remote + self.mem

    def total_accesses(self) -> int:
        return int(self.accesses.sum())

    def miss_ratio(self, pu: int) -> float:
        """Fraction of PU's accesses not served by its own hierarchy."""
        total = int(self.accesses[pu])
        if total == 0:
            return 0.0
        return float(self.remote[pu] + self.mem[pu]) / total


class CacheHierarchy:
    """Simulated caches + coherence for one machine (or one node of it).

    ``prefetch_depth`` enables a next-line prefetcher: a demand miss
    that goes to memory also fills the following ``prefetch_depth``
    lines (not counted as accesses), converting subsequent misses of a
    streaming sweep into hits -- the hardware feature that makes real
    streaming kernels latency-tolerant.
    """

    def __init__(self, machine: Machine, *, prefetch_depth: int = 0) -> None:
        if prefetch_depth < 0:
            raise ValueError("prefetch_depth must be >= 0")
        self.prefetch_depth = prefetch_depth
        self.prefetches = 0
        self.machine = machine
        self.levels: Tuple[int, ...] = tuple(sorted(machine.caches))
        self.llc_level = machine.llc_level
        line = {machine.caches[lvl].line_bytes for lvl in self.levels}
        if len(line) != 1:
            raise ValueError(f"heterogeneous line sizes unsupported: {line}")
        self.line_bytes = line.pop() if line else 64
        # caches[level][instance id] -> cache object
        self.caches: Dict[int, List[SetAssociativeCache]] = {}
        for lvl in self.levels:
            n = machine.cache_instances(lvl)
            self.caches[lvl] = [
                SetAssociativeCache(machine.caches[lvl], name=f"L{lvl}#{i}")
                for i in range(n)
            ]
        # directory[level][line] = set of instance ids holding the line
        self._dir: Dict[int, Dict[int, Set[int]]] = {lvl: {} for lvl in self.levels}
        # Per-PU path through the hierarchy, precomputed for the hot loop.
        self._path: List[Tuple[Tuple[int, int, SetAssociativeCache], ...]] = []
        for pu in machine.pus:
            path = []
            for lvl in self.levels:
                cid = pu.cache_id(lvl)
                path.append((lvl, cid, self.caches[lvl][cid]))
            self._path.append(tuple(path))
        n = machine.n_pus
        nl = len(self.levels)
        self._hits = np.zeros((n, nl), dtype=np.int64)
        self._remote = np.zeros(n, dtype=np.int64)
        self._mem = np.zeros(n, dtype=np.int64)
        self._writes = np.zeros(n, dtype=np.int64)
        self._inval_sent = np.zeros(n, dtype=np.int64)

    # ------------------------------------------------------------------ core
    def access(self, pu: int, addr: int, *, write: bool = False) -> int:
        """Simulate one access to byte address ``addr``; returns the
        service level (1..llc, REMOTE_LEVEL or MEMORY_LEVEL)."""
        return self._access_line(pu, addr // self.line_bytes, write)

    def access_run(
        self, pu: int, lines: Iterable[int], *, write: bool = False
    ) -> None:
        """Simulate a run of accesses given as *line numbers* (hot path)."""
        access = self._access_line
        for ln in lines:
            access(pu, ln, write)

    def _access_line(self, pu: int, line: int, write: bool) -> int:
        path = self._path[pu]
        dirs = self._dir
        service = MEMORY_LEVEL
        missed: List[Tuple[int, int, SetAssociativeCache]] = []
        for idx, (lvl, cid, cache) in enumerate(path):
            evicted = cache.access(line)
            if evicted is None:
                service = lvl
                self._hits[pu, idx] += 1
                break
            # miss: the access() call already filled the line
            missed.append((lvl, cid, cache))
            d = dirs[lvl]
            holders = d.get(line)
            if holders is None:
                d[line] = {cid}
            else:
                holders.add(cid)
            if evicted != -1:
                ev_holders = d.get(evicted)
                if ev_holders is not None:
                    ev_holders.discard(cid)
                    if not ev_holders:
                        del d[evicted]
        else:
            # Missed everywhere in own hierarchy: remote cache or DRAM?
            # Own instances were just filled above, so exclude them.
            own_ids = {lvl: cid for lvl, cid, _ in path}
            for lvl in reversed(self.levels):
                holders = dirs[lvl].get(line)
                if holders and any(c != own_ids[lvl] for c in holders):
                    service = REMOTE_LEVEL
                    break
            if service == REMOTE_LEVEL:
                self._remote[pu] += 1
            else:
                self._mem[pu] += 1
                for d in range(1, self.prefetch_depth + 1):
                    self._prefetch_line(pu, line + d)
        if write:
            self._writes[pu] += 1
            own = {lvl: cid for lvl, cid, _ in path}
            sent = 0
            for lvl in self.levels:
                holders = dirs[lvl].get(line)
                if not holders:
                    continue
                mine = own[lvl]
                others = [c for c in holders if c != mine]
                for cid in others:
                    self.caches[lvl][cid].invalidate(line)
                    holders.discard(cid)
                    sent += 1
                if not holders:
                    del dirs[lvl][line]
            self._inval_sent[pu] += sent
        return service

    def _prefetch_line(self, pu: int, line: int) -> None:
        """Fill ``line`` into the PU's hierarchy without access stats."""
        dirs = self._dir
        for lvl, cid, cache in self._path[pu]:
            if cache.probe(line):
                continue
            evicted = cache.fill(line)
            d = dirs[lvl]
            holders = d.get(line)
            if holders is None:
                d[line] = {cid}
            else:
                holders.add(cid)
            if evicted is not None:
                ev = d.get(evicted)
                if ev is not None:
                    ev.discard(cid)
                    if not ev:
                        del d[evicted]
        self.prefetches += 1

    # ---------------------------------------------------------------- helpers
    def touch_range(self, pu: int, addr: int, nbytes: int, *, write: bool = False) -> None:
        """Access every line of ``[addr, addr+nbytes)`` once, in order."""
        first = addr // self.line_bytes
        last = (addr + nbytes - 1) // self.line_bytes
        self.access_run(pu, range(first, last + 1), write=write)

    def flush_all(self) -> None:
        for lvl in self.levels:
            for c in self.caches[lvl]:
                c.flush()
        for lvl in self.levels:
            self._dir[lvl].clear()

    def reset_stats(self) -> None:
        self._hits[:] = 0
        self._remote[:] = 0
        self._mem[:] = 0
        self._writes[:] = 0
        self._inval_sent[:] = 0
        for lvl in self.levels:
            for c in self.caches[lvl]:
                c.reset_stats()

    def stats(self) -> AccessStats:
        return AccessStats(
            n_pus=self.machine.n_pus,
            llc_level=self.llc_level,
            hits=self._hits.copy(),
            remote=self._remote.copy(),
            mem=self._mem.copy(),
            writes=self._writes.copy(),
            invalidations_sent=self._inval_sent.copy(),
        )

    def directory_holders(self, level: int, addr: int) -> Set[int]:
        """Instance ids holding the line of ``addr`` at ``level`` (for tests)."""
        return set(self._dir[level].get(addr // self.line_bytes, set()))


__all__ = ["CacheHierarchy", "AccessStats", "MEMORY_LEVEL", "REMOTE_LEVEL"]
