"""Trace-driven memory-hierarchy simulator.

The paper's cache-footprint experiments (Table I, Figure 3) run on real
Nehalem-EX hardware; this package is the software stand-in.  It provides:

* :mod:`~repro.memsim.address_space` -- a simulated virtual address
  space with an allocator, so every variable in the reproduction has a
  concrete address range and the cache simulator sees realistic layouts.
* :mod:`~repro.memsim.cache` -- a set-associative LRU cache.
* :mod:`~repro.memsim.hierarchy` -- per-machine cache hierarchy with
  private L1/L2, shared LLC per socket, and MESI-style write-invalidate
  coherence tracked through a line directory.
* :mod:`~repro.memsim.timing` -- a latency + bandwidth-contention cost
  model turning per-PU access profiles into cycle counts and parallel
  efficiency.
* :mod:`~repro.memsim.traces` -- access-trace generators (uniform random
  table lookups, streaming sweeps, blocked matrix multiply).

The simulator works at cache-line granularity, so workload and cache
sizes can be scaled down together without changing which working sets
fit where -- the property all the paper's shapes rest on.
"""

from repro.memsim.address_space import AddressSpace, AddressSpaceExhausted, Allocation
from repro.memsim.cache import SetAssociativeCache
from repro.memsim.hierarchy import CacheHierarchy, AccessStats, MEMORY_LEVEL, REMOTE_LEVEL
from repro.memsim.timing import TimingModel, RunTiming
from repro.memsim.traces import (
    interleave_round_robin,
    random_table_trace,
    stream_trace,
    stream_lines,
    blocked_matmul_trace,
)

__all__ = [
    "AddressSpace",
    "AddressSpaceExhausted",
    "Allocation",
    "SetAssociativeCache",
    "CacheHierarchy",
    "AccessStats",
    "MEMORY_LEVEL",
    "REMOTE_LEVEL",
    "TimingModel",
    "RunTiming",
    "interleave_round_robin",
    "random_table_trace",
    "stream_trace",
    "stream_lines",
    "blocked_matmul_trace",
]
