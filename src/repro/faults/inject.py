"""The fault injector: plan execution at runtime hook sites.

Hook contract (what ``Runtime``, ``Mailbox``, the collective engines
and ``ScopeSyncState`` call)::

    if faults is not None:
        faults.hit(site, task)              # may sleep or raise
        # delivery site only:
        act = faults.hit("p2p.post", src)   # may return ("reorder", hold)

``hit`` handles most actions internally -- ``delay`` sleeps, ``crash``
raises :class:`~repro.runtime.errors.InjectedCrash`, ``clone_fail``
raises :class:`~repro.runtime.errors.PayloadCloneError`, ``transient``
raises :class:`~repro.runtime.errors.TransientCommError`, ``wake``
spuriously notifies a parked waiter -- so call sites stay one line.
Only ``reorder`` needs cooperation: the mailbox holds the envelope back
(see :meth:`repro.runtime.message.Mailbox.post`).

Determinism: every hit increments a per-``(site, task)`` counter under
the injector lock; a spec fires when the counter lands in its window.
The counter depends only on the hitting task's own call sequence, so
the fired-injection log is schedule-independent for workloads whose
per-task call sequences are deterministic -- the property the
record/replay test asserts bit-for-bit.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.faults.plan import FaultPlan, FaultSpec
from repro.runtime.errors import (
    InjectedCrash,
    PayloadCloneError,
    TransientCommError,
)

#: spec ``task`` value matching every rank
ANY_TASK = -1

#: one fired injection: (site, task, hit number, action)
FiredInjection = Tuple[str, int, int, str]


class FaultInjector:
    """Executes one :class:`FaultPlan` against one runtime."""

    def __init__(self, plan: FaultPlan, runtime: Optional[Any] = None) -> None:
        self.plan = plan
        self.runtime = runtime
        self._lock = threading.Lock()
        self._counts: Dict[Tuple[str, int], int] = {}
        #: specs indexed by site -- the hot-path lookup
        self._by_site: Dict[str, List[FaultSpec]] = {}
        for spec in plan:
            self._by_site.setdefault(spec.site, []).append(spec)
        #: every injection fired, in firing order (lock-serialised);
        #: sort for cross-run comparison -- per-entry content is
        #: deterministic, global interleaving is not
        self.log: List[FiredInjection] = []
        #: fired-injection tally per action
        self.fired: Dict[str, int] = {}

    # ------------------------------------------------------------------ state
    @property
    def injections(self) -> int:
        with self._lock:
            return sum(self.fired.values())

    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "injections": sum(self.fired.values()),
                "fired": dict(self.fired),
                "hits": sum(self._counts.values()),
            }

    # ------------------------------------------------------------------- hit
    def hit(
        self,
        site: str,
        task: int,
        wake: Optional[Callable[[], None]] = None,
    ) -> Optional[Tuple[str, float]]:
        """Announce one hook hit; fire every matching spec.

        Returns ``("reorder", hold_seconds)`` when a reorder fired (the
        mailbox implements the holdback), else ``None``.  May sleep
        (``delay``) or raise (``crash``/``clone_fail``/``transient``).
        """
        specs = self._by_site.get(site)
        if not specs:
            return None
        with self._lock:
            key = (site, task)
            n = self._counts.get(key, 0) + 1
            self._counts[key] = n
            matched = [s for s in specs if s.applies(task, n)]
            for spec in matched:
                self.fired[spec.action] = self.fired.get(spec.action, 0) + 1
                self.log.append((site, task, n, spec.action))
        result: Optional[Tuple[str, float]] = None
        for spec in matched:
            act = spec.action
            if act == "delay":
                # route through the runtime's task sleep so a coop task
                # parks on the virtual clock instead of blocking the
                # single runner (and so delays are deterministic under
                # schedule record/replay)
                sleep = getattr(self.runtime, "task_sleep", None) or time.sleep
                sleep(spec.param)
            elif act == "crash":
                raise InjectedCrash(
                    f"injected crash at {site} hit {n} (task {task})"
                )
            elif act == "clone_fail":
                raise PayloadCloneError(
                    f"injected payload-clone failure at {site} hit {n} "
                    f"(task {task})"
                )
            elif act == "transient":
                raise TransientCommError(
                    f"injected comm-buffer exhaustion at {site} hit {n} "
                    f"(task {task})"
                )
            elif act == "wake":
                self._spurious_wake(spec, task, wake)
            elif act == "reorder":
                result = ("reorder", spec.param)
        return result

    # ---------------------------------------------------------------- actions
    def _spurious_wake(
        self,
        spec: FaultSpec,
        task: int,
        wake: Optional[Callable[[], None]],
    ) -> None:
        """Spurious condition wakeup: notify a victim mailbox, or the
        call site's own parked waiters when it supplied a waker."""
        if spec.victim >= 0 and self.runtime is not None:
            if spec.victim < self.runtime.n_tasks:
                self.runtime.mailbox(spec.victim).wake()
            return
        if wake is not None:
            wake()
            return
        if self.runtime is not None and 0 <= task < self.runtime.n_tasks:
            self.runtime.mailbox(task).wake()

    def sorted_log(self) -> List[FiredInjection]:
        """The fired-injection log in canonical order (the unit the
        replay test compares bit-for-bit)."""
        with self._lock:
            return sorted(self.log)


__all__ = ["ANY_TASK", "FaultInjector", "FiredInjection"]
