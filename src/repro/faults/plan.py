"""Fault plans: what to inject, where, and when.

A plan is a plain list of :class:`FaultSpec` records.  Each spec names
an injection *site* (a stable string identifying one hook in the
runtime), an *action*, the task it applies to, and the hit window it
fires in: the per-``(site, task)`` hit counter must land in
``[nth, nth + count)``.  Because the counter tracks only the task's own
call sequence, a spec fires at the same program point in every run of
the same workload -- the determinism the record/replay workflow rests
on.

Plans are value objects: equality is structural, and ``to_json`` is
canonical (sorted keys, fixed field order) so two equal plans serialize
to the identical string.
"""

from __future__ import annotations

import json
import random
from dataclasses import asdict, dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

#: injection sites -> the actions each site understands.  Sites are the
#: stable contract between plans and the runtime hooks; adding a site
#: means adding a ``faults.hit`` call at the matching code path.
SITES: Dict[str, Tuple[str, ...]] = {
    # message delivery: sender side of Runtime.post_message
    "p2p.post": ("delay", "crash", "reorder", "wake", "clone_fail"),
    # receiver entry of Mailbox.receive (slow receiver / crash mid-recv)
    "p2p.recv": ("delay", "crash"),
    # eager comm-buffer allocation attempt (transient exhaustion)
    "p2p.alloc": ("transient",),
    # per-rank entry of a collective episode (flat barrier arrival or
    # hierarchical tree sweep)
    "coll.sweep": ("delay", "crash", "wake"),
    # nonblocking collectives (repro.runtime.icoll): once per rank on
    # episode deposit, then once per dataflow cell an executor runs
    "coll.ichunk": ("delay", "crash", "wake"),
    # HLS scope synchronisation directives
    "hls.barrier": ("delay", "crash", "wake"),
    "hls.single": ("delay", "crash", "wake"),
    "hls.nowait": ("delay", "crash", "wake"),
    # one-sided windows (repro.runtime.rma): origin side of put /
    # accumulate, origin side of get, and every epoch call
    # (fence / post / start / complete / wait / lock / unlock)
    "rma.put": ("delay", "crash", "wake"),
    "rma.get": ("delay", "crash", "wake"),
    "rma.epoch": ("delay", "crash", "wake"),
    # loop self-scheduling (repro.scheduler): before a chunk-claim
    # fetch-and-add and before a steal's tail compare-and-swap
    "sched.claim": ("delay", "crash", "wake"),
    "sched.steal": ("delay", "crash", "wake"),
    # chunk stores (repro.storage): before a chunk read, before a chunk
    # (spill/flush) write, and before a manifest commit -- the commit is
    # atomic on disk, so a crash at storage.flush leaves the previous
    # checkpoint intact (what the chaos restart battery asserts)
    "storage.read": ("delay", "crash", "wake"),
    "storage.write": ("delay", "crash", "wake"),
    "storage.flush": ("delay", "crash", "wake"),
}

#: all actions any site understands
ACTIONS: Tuple[str, ...] = tuple(
    sorted({a for actions in SITES.values() for a in actions})
)

#: generation weights for :meth:`FaultPlan.random` -- perturbations
#: dominate, hard failures are a sizeable minority
_ACTION_WEIGHTS: Dict[str, float] = {
    "delay": 4.0,
    "reorder": 2.0,
    "wake": 2.0,
    "crash": 2.0,
    "clone_fail": 1.0,
    "transient": 1.0,
}


@dataclass(frozen=True)
class FaultSpec:
    """One injection: fire ``action`` at hits ``nth .. nth+count-1`` of
    ``site`` by ``task`` (``task == -1`` matches every task's counter).

    ``param`` is the action's knob: seconds to sleep for ``delay``,
    seconds a reordered envelope may be held for ``reorder``; unused
    otherwise.  ``victim`` aims ``wake`` at a specific task's mailbox
    (``-1``: the spurious waker the call site supplies, falling back to
    the hitting task's own mailbox)."""

    site: str
    action: str
    task: int = -1
    nth: int = 1
    count: int = 1
    param: float = 0.0
    victim: int = -1

    def __post_init__(self) -> None:
        if self.site not in SITES:
            raise ValueError(f"unknown injection site {self.site!r}")
        if self.action not in SITES[self.site]:
            raise ValueError(
                f"site {self.site!r} does not support action {self.action!r} "
                f"(supports {SITES[self.site]})"
            )
        if self.nth < 1:
            raise ValueError("nth is 1-based: first hit is nth=1")
        if self.count < 1:
            raise ValueError("count must be >= 1")
        if self.param < 0:
            raise ValueError("param must be >= 0")

    def applies(self, task: int, n: int) -> bool:
        """Does this spec fire on hit number ``n`` by ``task``?"""
        if self.task != -1 and self.task != task:
            return False
        return self.nth <= n < self.nth + self.count


@dataclass
class FaultPlan:
    """A deterministic, serializable set of injections."""

    specs: List[FaultSpec] = field(default_factory=list)
    #: the seed the plan was generated from (None for hand-built plans);
    #: carried for provenance in recorded artifacts
    seed: Optional[int] = None

    # -------------------------------------------------------------- building
    @classmethod
    def single(cls, site: str, action: str, **kwargs) -> "FaultPlan":
        """A one-spec plan (convenience for targeted tests)."""
        return cls([FaultSpec(site=site, action=action, **kwargs)])

    @classmethod
    def random(
        cls,
        seed: int,
        n_tasks: int,
        *,
        n_faults: int = 6,
        sites: Optional[Sequence[str]] = None,
        max_nth: int = 12,
        max_delay: float = 0.01,
        crash_rate: Optional[float] = None,
    ) -> "FaultPlan":
        """A seeded random plan: ``n_faults`` specs drawn over ``sites``
        (default: every registered site) and ``n_tasks`` ranks.

        The draw is fully determined by ``seed`` -- the chaos sweep's
        contract is that re-running a seed reproduces the plan exactly.
        ``crash_rate`` overrides the default action mix with an explicit
        probability of hard-failure actions (crash/clone_fail).
        """
        rng = random.Random(seed)
        pool = list(sites) if sites is not None else list(SITES)
        for s in pool:
            if s not in SITES:
                raise ValueError(f"unknown injection site {s!r}")
        specs: List[FaultSpec] = []
        for _ in range(n_faults):
            site = rng.choice(pool)
            actions = SITES[site]
            if crash_rate is not None:
                hard = [a for a in actions if a in ("crash", "clone_fail")]
                soft = [a for a in actions if a not in ("crash", "clone_fail")]
                if hard and (not soft or rng.random() < crash_rate):
                    action = rng.choice(hard)
                else:
                    action = rng.choice(soft)
            else:
                weights = [_ACTION_WEIGHTS[a] for a in actions]
                action = rng.choices(actions, weights=weights, k=1)[0]
            specs.append(
                FaultSpec(
                    site=site,
                    action=action,
                    task=rng.randrange(-1, n_tasks),
                    nth=rng.randrange(1, max_nth + 1),
                    count=rng.randrange(1, 4),
                    param=round(rng.uniform(0.0, max_delay), 6),
                    victim=rng.randrange(-1, n_tasks),
                )
            )
        return cls(specs, seed=seed)

    # --------------------------------------------------------------- queries
    def __iter__(self):
        return iter(self.specs)

    def __len__(self) -> int:
        return len(self.specs)

    def sites(self) -> Tuple[str, ...]:
        return tuple(sorted({s.site for s in self.specs}))

    def has_action(self, *actions: str) -> bool:
        return any(s.action in actions for s in self.specs)

    # ----------------------------------------------------------- serialization
    def to_dict(self) -> Dict:
        return {
            "version": 1,
            "seed": self.seed,
            "specs": [asdict(s) for s in self.specs],
        }

    def to_json(self) -> str:
        """Canonical JSON: equal plans produce the identical string."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_dict(cls, data: Dict) -> "FaultPlan":
        version = data.get("version", 1)
        if version != 1:
            raise ValueError(f"unsupported fault-plan version {version}")
        specs = [FaultSpec(**spec) for spec in data.get("specs", [])]
        return cls(specs, seed=data.get("seed"))

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        return cls.from_dict(json.loads(text))

    def dump(self, path) -> None:
        """Write the plan to ``path`` (the CI failing-seed artifact)."""
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_json())
            fh.write("\n")

    @classmethod
    def load(cls, path) -> "FaultPlan":
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_json(fh.read())


__all__ = ["ACTIONS", "SITES", "FaultPlan", "FaultSpec"]
