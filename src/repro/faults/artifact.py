"""Chaos failure artifacts: a fault plan plus the schedule that ran it.

A seeded chaos failure used to be reproducible from its
:class:`~repro.faults.plan.FaultPlan` alone only when the OS scheduler
happened to cooperate.  With the coop execution backend the *schedule*
is a first-class recorded object too
(:class:`~repro.runtime.sched.policy.ScheduleTrace`), so a failure
artifact can capture everything a rerun needs::

    art = ChaosArtifact.from_runtime(rt, plan)   # after the bad run
    art.dump("chaos_artifact_seed7.json")        # CI uploads this

    art = ChaosArtifact.load(path)               # on the developer box
    rt = Runtime(machine, n_tasks=art.n_tasks, backend="coop",
                 schedule=art.replay_schedule(), sharing=art.sharing)
    rt.install_faults(art.plan)
    rt.run(workload)                             # the identical failure

Serialisation is canonical JSON (sorted keys, compact separators), the
same convention as ``FaultPlan.to_json`` and ``ScheduleTrace.to_json``:
equal artifacts produce the identical string, so the replay test can
compare artifacts bit-for-bit.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.faults.plan import FaultPlan
from repro.runtime.sched.policy import ScheduleTrace


@dataclass
class ChaosArtifact:
    """Everything needed to replay one chaos run bit-for-bit."""

    #: the fault plan that was installed
    plan: FaultPlan
    #: the recorded schedule (None for a threads-backend run, where the
    #: OS owns the interleaving and nothing can be replayed)
    trace: Optional[ScheduleTrace] = None
    #: execution backend of the failing run
    backend: str = "threads"
    #: delivery sharing policy of the failing run
    sharing: str = "private"
    #: task count (redundant with the trace but present for
    #: threads-backend artifacts too)
    n_tasks: int = 0
    #: free-form context: workload name, failing test id, exception
    meta: Dict[str, Any] = field(default_factory=dict)

    # --------------------------------------------------------------- capture
    @classmethod
    def from_runtime(cls, runtime: Any, plan: Optional[FaultPlan] = None,
                     **meta: Any) -> "ChaosArtifact":
        """Capture the (plan, schedule) pair of a finished run."""
        if plan is None:
            injector = getattr(runtime, "faults", None)
            plan = injector.plan if injector is not None else FaultPlan()
        trace_of = getattr(runtime, "schedule_trace", None)
        trace = trace_of() if trace_of is not None else None
        return cls(
            plan=plan,
            trace=trace,
            backend=getattr(runtime, "execution_backend", "threads"),
            sharing=getattr(runtime, "sharing", "private"),
            n_tasks=getattr(runtime, "n_tasks", 0),
            meta=dict(meta),
        )

    # ---------------------------------------------------------------- replay
    def replay_schedule(self) -> Optional[ScheduleTrace]:
        """The schedule to pass to ``Runtime(backend="coop",
        schedule=...)`` -- None when the artifact has no trace (rerun
        under the recorded backend and hope, as before)."""
        return self.trace

    # ----------------------------------------------------------- serialization
    def to_dict(self) -> Dict[str, Any]:
        return {
            "version": 1,
            "plan": self.plan.to_dict(),
            "trace": None if self.trace is None else self.trace.to_dict(),
            "backend": self.backend,
            "sharing": self.sharing,
            "n_tasks": self.n_tasks,
            "meta": self.meta,
        }

    def to_json(self) -> str:
        """Canonical JSON: equal artifacts produce the identical string."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ChaosArtifact":
        version = data.get("version", 1)
        if version != 1:
            raise ValueError(f"unsupported chaos-artifact version {version}")
        trace = data.get("trace")
        return cls(
            plan=FaultPlan.from_dict(data["plan"]),
            trace=None if trace is None else ScheduleTrace.from_dict(trace),
            backend=data.get("backend", "threads"),
            sharing=data.get("sharing", "private"),
            n_tasks=data.get("n_tasks", 0),
            meta=dict(data.get("meta", {})),
        )

    @classmethod
    def from_json(cls, text: str) -> "ChaosArtifact":
        return cls.from_dict(json.loads(text))

    def dump(self, path) -> None:
        """Write the artifact to ``path`` (the CI upload unit)."""
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_json())
            fh.write("\n")

    @classmethod
    def load(cls, path) -> "ChaosArtifact":
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_json(fh.read())


__all__ = ["ChaosArtifact"]
