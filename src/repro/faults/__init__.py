"""Fault injection and schedule perturbation (chaos harness).

The runtime's concurrency surface -- indexed P2P matching, hierarchical
collective sweeps, HLS scope synchronisation -- is exercised in tests
by *provoking* the rare schedules production would eventually find: a
:class:`FaultPlan` registers deterministic, seeded injections (message
delivery delay and reorder, task crash at the Nth runtime call, slow
receivers, spurious condition wakeups, payload-clone failure, transient
comm-buffer exhaustion) and a :class:`FaultInjector` fires them from
``faults.hit(site, task)`` hooks threaded through the hot paths.

Design rules:

* **zero cost when off** -- every hook site guards on a single
  attribute check (``runtime.faults is None``); an idle runtime
  executes no injection code at all;
* **deterministic** -- injections key on per-``(site, task)`` hit
  counters, which depend only on each task's own call sequence, never
  on cross-task interleaving; the same plan over the same workload
  fires the same injections;
* **replayable** -- plans serialize to JSON
  (:meth:`FaultPlan.to_json` / :meth:`FaultPlan.from_json`) so the
  failing member of a seeded chaos sweep can be recorded as an artifact
  and replayed bit-for-bit.

Quick use::

    from repro.faults import FaultPlan

    plan = FaultPlan.random(seed=7, n_tasks=8)      # seeded chaos
    rt = Runtime(machine, n_tasks=8)
    rt.install_faults(plan)
    rt.run(main)            # clean result or clean AbortError -- never a hang
    print(rt.fault_metrics().render())
"""

from repro.faults.plan import ACTIONS, SITES, FaultPlan, FaultSpec
from repro.faults.inject import ANY_TASK, FaultInjector
from repro.faults.artifact import ChaosArtifact

__all__ = [
    "ACTIONS",
    "ANY_TASK",
    "ChaosArtifact",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "SITES",
]
