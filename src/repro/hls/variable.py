"""HLS variable registry: modules, offsets, declaration constraints.

The paper identifies an HLS variable by ``(module, offset)``: "A
variable is identified by the two arguments: the module which
corresponds to the program or the library where the variable is
declared and its offset in the memory area" (section IV-A).  This
module reproduces that layout: variables are declared into
:class:`HLSModule` compilation units which assign densely packed,
aligned offsets; the linker's job of filling module ids is played by
:class:`HLSRegistry`.

Declaration constraints follow OpenMP ``threadprivate`` (section
II-B1): the variable must be "global" (here: registry-level, not local
to a task), must not have been accessed yet, and can be declared HLS at
most once.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.machine.scopes import ScopeSpec


class HLSDeclarationError(ValueError):
    """Invalid HLS declaration (duplicate, already accessed, unknown...)."""


#: Pseudo-scope for non-HLS globals: one copy per MPI task (the MPC TLS
#: privatization of section VI).  Represented as None in ScopeSpec terms.
PRIVATE = None

_ALIGN = 64


@dataclass
class HLSVariable:
    """One global variable, possibly HLS."""

    name: str
    module: int
    offset: int
    dtype: np.dtype
    shape: Tuple[int, ...]
    scope: Optional[ScopeSpec]       # None = private per task
    initializer: Optional[Callable[[], np.ndarray]] = None
    accessed: bool = False           # set on first get-address
    #: bytes the variable stands for in *memory accounting*; defaults to
    #: the real buffer size.  Lets the memory-footprint experiments use
    #: the paper's true sizes (a 128MB EOS table) while backing them
    #: with small live arrays -- the simulator never needs the bytes,
    #: only the layout and the accounting.
    virtual_bytes: Optional[int] = None

    @property
    def nbytes(self) -> int:
        return int(np.prod(self.shape, dtype=np.int64)) * self.dtype.itemsize

    @property
    def accounting_bytes(self) -> int:
        return self.virtual_bytes if self.virtual_bytes is not None else self.nbytes

    @property
    def is_hls(self) -> bool:
        return self.scope is not None

    def initial_value(self) -> np.ndarray:
        """Materialise the initial contents (zeros by default)."""
        if self.initializer is None:
            return np.zeros(self.shape, dtype=self.dtype)
        val = np.asarray(self.initializer(), dtype=self.dtype)
        if val.shape != self.shape:
            raise HLSDeclarationError(
                f"initializer for {self.name!r} produced shape {val.shape}, "
                f"declared {self.shape}"
            )
        return val


class HLSModule:
    """One compilation unit: a packed sequence of global variables."""

    def __init__(self, module_id: int, name: str = "") -> None:
        self.module_id = module_id
        self.name = name or f"module{module_id}"
        self.variables: Dict[str, HLSVariable] = {}
        self._cursor = 0

    def add(
        self,
        name: str,
        *,
        shape: Tuple[int, ...],
        dtype: Any,
        scope: Optional[ScopeSpec],
        initializer: Optional[Callable[[], np.ndarray]] = None,
        virtual_bytes: Optional[int] = None,
    ) -> HLSVariable:
        if name in self.variables:
            raise HLSDeclarationError(f"variable {name!r} already declared")
        dt = np.dtype(dtype)
        offset = (self._cursor + _ALIGN - 1) & ~(_ALIGN - 1)
        var = HLSVariable(
            name=name, module=self.module_id, offset=offset,
            dtype=dt, shape=tuple(int(s) for s in shape),
            scope=scope, initializer=initializer, virtual_bytes=virtual_bytes,
        )
        self._cursor = offset + var.nbytes
        self.variables[name] = var
        return var

    @property
    def image_bytes(self) -> int:
        """Size of this module's data image (real backing buffer)."""
        return max(self._cursor, 1)

    @property
    def accounting_bytes(self) -> int:
        """Bytes this image stands for in memory accounting (virtual
        sizes included)."""
        extra = sum(
            v.accounting_bytes - v.nbytes
            for v in self.variables.values()
            if v.virtual_bytes is not None
        )
        return self.image_bytes + extra

    def by_offset(self, offset: int) -> HLSVariable:
        for var in self.variables.values():
            if var.offset == offset:
                return var
        raise KeyError(f"no variable at offset {offset} in {self.name}")


class HLSRegistry:
    """All modules of one program; resolves names to variables."""

    def __init__(self) -> None:
        self.modules: List[HLSModule] = []
        self._by_name: Dict[str, HLSVariable] = {}
        self.new_module("main")

    def new_module(self, name: str = "") -> HLSModule:
        mod = HLSModule(len(self.modules), name)
        self.modules.append(mod)
        return mod

    def declare(
        self,
        name: str,
        *,
        shape: Tuple[int, ...] = (),
        dtype: Any = np.float64,
        scope: Optional[ScopeSpec] = None,
        initializer: Optional[Callable[[], np.ndarray]] = None,
        module: Optional[HLSModule] = None,
        virtual_bytes: Optional[int] = None,
    ) -> HLSVariable:
        """Declare a global variable; scalars use ``shape=()``."""
        if name in self._by_name:
            raise HLSDeclarationError(f"variable {name!r} already declared")
        mod = module if module is not None else self.modules[0]
        shape = shape if shape else (1,)
        var = mod.add(
            name, shape=shape, dtype=dtype, scope=scope,
            initializer=initializer, virtual_bytes=virtual_bytes,
        )
        self._by_name[name] = var
        return var

    def set_scope(self, name: str, scope: ScopeSpec) -> HLSVariable:
        """Mark an existing variable HLS: the `#pragma hls scope(...)`
        path.  Refused once the variable has been accessed (same rule as
        threadprivate)."""
        var = self[name]
        if var.accessed:
            raise HLSDeclarationError(
                f"variable {name!r} was already accessed; too late to mark HLS"
            )
        if var.scope is not None:
            raise HLSDeclarationError(f"variable {name!r} is already HLS ({var.scope})")
        var.scope = scope
        return var

    def __getitem__(self, name: str) -> HLSVariable:
        try:
            return self._by_name[name]
        except KeyError:
            raise HLSDeclarationError(f"unknown variable {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def names(self) -> List[str]:
        return list(self._by_name)

    def hls_variables(self) -> List[HLSVariable]:
        return [v for v in self._by_name.values() if v.is_hls]

    def hls_bytes(self) -> int:
        """Total footprint of one copy of every HLS variable -- the
        quantity the per-node memory saving is proportional to.
        Virtual (accounting) sizes count here."""
        return sum(v.accounting_bytes for v in self.hls_variables())


__all__ = [
    "HLSDeclarationError",
    "HLSVariable",
    "HLSModule",
    "HLSRegistry",
    "PRIVATE",
]
