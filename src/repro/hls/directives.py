"""Parsing of ``#pragma hls`` directives.

Grammar (paper section II-B)::

    #pragma hls <scope>(var1, ..., varN) [level(L)]     scope directive
    #pragma hls single(var1, ..., varN) [nowait]        single
    #pragma hls barrier(var1, ..., varN)                barrier

with ``<scope>`` one of ``node``, ``numa``, ``cache``, ``core``.  The
same parser serves the source-to-source compiler (pragmas as Python
comments) and the Fortran-style prefix ``!$hls`` accepted for symmetry
with the paper's multi-language support.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.machine.scopes import ScopeKind, ScopeSpec


class PragmaError(ValueError):
    """Malformed ``#pragma hls`` line."""


@dataclass(frozen=True)
class Directive:
    """One parsed directive."""

    kind: str                    # "scope" | "single" | "barrier"
    variables: Tuple[str, ...]
    scope: Optional[ScopeSpec] = None   # for kind == "scope"
    nowait: bool = False                # for kind == "single"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        head = str(self.scope.kind) if self.kind == "scope" else self.kind
        s = f"#pragma hls {head}({', '.join(self.variables)})"
        if self.kind == "scope" and self.scope and self.scope.level is not None:
            s += f" level({self.scope.level})"
        if self.nowait:
            s += " nowait"
        return s


_PRAGMA_RE = re.compile(
    r"^\s*(?:#\s*pragma|!\$)\s+hls\s+(?P<head>\w+)\s*"
    r"\(\s*(?P<vars>[^)]*)\)\s*(?P<tail>.*)$"
)
_LEVEL_RE = re.compile(r"^level\s*\(\s*(\d+)\s*\)$")

_SCOPE_HEADS = {k.value for k in ScopeKind}


def is_pragma(line: str) -> bool:
    """Cheap test whether a source line looks like an HLS pragma."""
    stripped = line.strip()
    return (
        stripped.startswith(("#pragma", "# pragma", "!$"))
        and "hls" in stripped.split("(")[0]
    )


def parse_pragma(line: str) -> Directive:
    """Parse one pragma line into a :class:`Directive`."""
    m = _PRAGMA_RE.match(line.strip())
    if m is None:
        raise PragmaError(f"malformed hls pragma: {line!r}")
    head = m.group("head").lower()
    var_text = m.group("vars").strip()
    tail = m.group("tail").strip()
    variables = tuple(v.strip() for v in var_text.split(",") if v.strip())
    if not variables:
        raise PragmaError(f"hls pragma needs at least one variable: {line!r}")
    for v in variables:
        if not v.isidentifier():
            raise PragmaError(f"bad variable name {v!r} in pragma: {line!r}")

    if head == "single":
        if tail and tail != "nowait":
            raise PragmaError(f"unexpected trailer {tail!r} on single pragma")
        return Directive(kind="single", variables=variables, nowait=tail == "nowait")

    if head == "barrier":
        if tail:
            raise PragmaError(f"unexpected trailer {tail!r} on barrier pragma")
        return Directive(kind="barrier", variables=variables)

    if head in _SCOPE_HEADS:
        level = None
        if tail:
            lm = _LEVEL_RE.match(tail)
            if lm is None:
                raise PragmaError(f"unexpected trailer {tail!r} on scope pragma")
            level = int(lm.group(1))
        kind = ScopeKind(head)
        if kind in (ScopeKind.CORE, ScopeKind.NODE) and level is not None:
            raise PragmaError(f"scope {head!r} does not accept level()")
        return Directive(
            kind="scope", variables=variables, scope=ScopeSpec(kind, level)
        )

    raise PragmaError(f"unknown hls directive {head!r} in: {line!r}")


__all__ = ["Directive", "PragmaError", "is_pragma", "parse_pragma"]
