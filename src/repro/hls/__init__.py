"""Hierarchical Local Storage -- the paper's core contribution.

HLS lets MPI tasks share selected global variables at a chosen level of
the memory hierarchy.  Minimal use::

    from repro.machine import core2_cluster
    from repro.runtime import Runtime
    from repro.hls import HLSProgram

    rt = Runtime(core2_cluster(2), n_tasks=16)
    prog = HLSProgram(rt)
    prog.declare("table", shape=(1000, 1000), scope="node")

    def main(ctx):
        h = prog.attach(ctx)
        if h.single_enter("table"):         # one task per node loads it
            try:
                load_table(h["table"])
            finally:
                h.single_done("table")
        use(h["table"])                     # all tasks share the copy

    rt.run(main)

The pragma dialect of the paper is supported through
:func:`~repro.hls.compiler.hls_compile` /
:func:`~repro.hls.compiler.compile_module_source`, which rewrite
``#pragma hls ...`` comments exactly like the modified GCC of section
IV.
"""

from repro.hls.variable import (
    HLSDeclarationError,
    HLSModule,
    HLSRegistry,
    HLSVariable,
)
from repro.hls.storage import HLSStorage, ModuleImage
from repro.hls.sync import HLSSync, ScopeSyncState
from repro.hls.program import HLSHandle, HLSProgram
from repro.hls.directives import Directive, PragmaError, is_pragma, parse_pragma
from repro.hls.compiler import (
    HLSCompileError,
    compile_module_source,
    hls_compile,
    scan_pragmas,
)
from repro.hls.shared_segment import (
    InterposedHeap,
    SharedSegmentManager,
    enable_process_hls,
)

__all__ = [
    "HLSDeclarationError",
    "HLSVariable",
    "HLSModule",
    "HLSRegistry",
    "HLSStorage",
    "ModuleImage",
    "HLSSync",
    "ScopeSyncState",
    "HLSProgram",
    "HLSHandle",
    "Directive",
    "PragmaError",
    "is_pragma",
    "parse_pragma",
    "HLSCompileError",
    "scan_pragmas",
    "hls_compile",
    "compile_module_source",
    "InterposedHeap",
    "SharedSegmentManager",
    "enable_process_hls",
]
