"""User-facing HLS API: programs and per-task handles.

An :class:`HLSProgram` binds a variable registry, storage and
synchronisation to a runtime.  ``enabled=False`` reproduces the paper's
compatibility guarantee -- "a compiler unaware of these directives can
ignore them and should generate a correct code": every variable becomes
private per task, ``single`` blocks run on every task (each initialises
its own copy) and ``barrier`` is a no-op.  The same application code
therefore runs in both modes, which is exactly how the evaluation's
"without HLS" baselines are produced.

Per-task :class:`HLSHandle` objects expose the compiled form of the
directives (``single_enter``/``single_done`` mirror the generated
``hls_single()``/``hls_single_done()`` calls of section IV-B) plus
convenience wrappers (:meth:`HLSHandle.single` running a callable).
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.machine.scopes import ScopeSpec
from repro.hls.storage import HLSStorage
from repro.hls.sync import HLSSync
from repro.hls.variable import HLSDeclarationError, HLSRegistry, HLSVariable

ScopeLike = Union[str, ScopeSpec, None]


def _as_scope(scope: ScopeLike) -> Optional[ScopeSpec]:
    if scope is None or isinstance(scope, ScopeSpec):
        return scope
    return ScopeSpec.parse(scope)


class HLSProgram:
    """One application's HLS state on one runtime."""

    def __init__(self, runtime, *, enabled: bool = True,
                 barrier_algorithm: str = "auto") -> None:
        self.runtime = runtime
        self.enabled = enabled
        self.registry = HLSRegistry()
        self.storage = HLSStorage(runtime, self.registry)
        self.sync = HLSSync(runtime, barrier_algorithm=barrier_algorithm)
        runtime.migration_checks.append(self.sync.check_migration)

    def close(self) -> None:
        """Release the program's materialised HLS/TLS images so the
        runtime's finalize leak report comes back clean.  Call after
        the last ``run()`` that touches this program's variables."""
        self.storage.release()

    # ------------------------------------------------------------- declaring
    def declare(
        self,
        name: str,
        *,
        shape: Tuple[int, ...] = (),
        dtype: Any = np.float64,
        scope: ScopeLike = None,
        initializer: Optional[Callable[[], np.ndarray]] = None,
        virtual_bytes: Optional[int] = None,
    ) -> HLSVariable:
        """Declare a global variable.  ``scope=None`` keeps it private
        per task (a plain global); a scope string ("node", "numa",
        "cache level(2)", "core") marks it HLS.  When the program is
        built with ``enabled=False`` all scopes collapse to private.
        ``virtual_bytes`` sets the accounting size (for footprint
        studies at the paper's true scales with small live buffers)."""
        spec = _as_scope(scope)
        if not self.enabled:
            spec = None
        return self.registry.declare(
            name, shape=shape, dtype=dtype, scope=spec,
            initializer=initializer, virtual_bytes=virtual_bytes,
        )

    def mark_hls(self, name: str, scope: ScopeLike) -> HLSVariable:
        """``#pragma hls scope(name)`` on an existing declaration."""
        spec = _as_scope(scope)
        if spec is None:
            raise HLSDeclarationError("mark_hls needs a concrete scope")
        if not self.enabled:
            return self.registry[name]
        return self.registry.set_scope(name, spec)

    # -------------------------------------------------------------- handles
    def attach(self, ctx) -> "HLSHandle":
        """The per-task handle (call once per task, in ``main``)."""
        if ctx.hls is None:
            ctx.hls = HLSHandle(self, ctx)
        return ctx.hls

    # ------------------------------------------------------------ accounting
    def hls_footprint_per_copy(self) -> int:
        return self.registry.hls_bytes()

    def expected_node_saving(self, tasks_per_node: int) -> int:
        """The paper's headline arithmetic: sharing at node scope saves
        ``(tasks_per_node - 1) x sizeof(HLS vars)`` per node."""
        return (tasks_per_node - 1) * self.registry.hls_bytes()

    # ---------------------------------------------------------------- helpers
    def _scope_of_vars(self, names: Sequence[str]) -> ScopeSpec:
        """Common scope of a single's variable list; mismatch is a
        compile error per section II-B2."""
        if not names:
            raise HLSDeclarationError("directive needs at least one variable")
        scopes = []
        for n in names:
            var = self.registry[n]
            if not var.is_hls:
                raise HLSDeclarationError(
                    f"variable {n!r} is not HLS; directives require HLS variables"
                )
            scopes.append(var.scope)
        if any(s != scopes[0] for s in scopes):
            raise HLSDeclarationError(
                f"variables {list(names)} do not share one HLS scope: {scopes}"
            )
        return scopes[0]

    def _widest_scope(self, names: Sequence[str]) -> ScopeSpec:
        if not names:
            raise HLSDeclarationError("barrier needs at least one variable")
        specs = []
        for n in names:
            var = self.registry[n]
            if not var.is_hls:
                raise HLSDeclarationError(
                    f"variable {n!r} is not HLS; directives require HLS variables"
                )
            specs.append(var.scope)
        return self.runtime.machine.widest(specs)


def _names(names: Union[str, Iterable[str]]) -> Tuple[str, ...]:
    if isinstance(names, str):
        return (names,)
    return tuple(names)


class HLSHandle:
    """Per-task view of an :class:`HLSProgram`."""

    def __init__(self, program: HLSProgram, ctx) -> None:
        self.program = program
        self.ctx = ctx

    # -------------------------------------------------------------- access
    def get(self, name: str) -> np.ndarray:
        """This task's live view of a variable (shared memory iff HLS)."""
        return self.program.storage.get(self.ctx, name)

    __getitem__ = get

    def addr(self, name: str) -> int:
        """Simulated address of this task's copy, for trace generation."""
        return self.program.storage.addr(self.ctx, name)

    def scope_instance(self, name: str):
        var = self.program.registry[name]
        if var.scope is None:
            return None
        return self.program.storage.scope_instance(self.ctx, var.scope)

    # ----------------------------------------------------------- directives
    def single_enter(self, names: Union[str, Iterable[str]], *,
                     nowait: bool = False) -> bool:
        """Compiled form of ``#pragma hls single(names) [nowait]``.

        Returns True for the task that must execute the block; that task
        must call :meth:`single_done` afterwards (unless ``nowait``)."""
        ns = _names(names)
        if not self.program.enabled:
            return True      # every task runs the block on its own copy
        spec = self.program._scope_of_vars(ns)
        if nowait:
            return self.program.sync.single_nowait_enter(self.ctx, spec)
        return self.program.sync.single_enter(self.ctx, spec)

    def single_done(self, names: Union[str, Iterable[str]], *,
                    nowait: bool = False) -> None:
        if not self.program.enabled or nowait:
            return
        spec = self.program._scope_of_vars(_names(names))
        self.program.sync.single_done(self.ctx, spec)

    def single(self, names: Union[str, Iterable[str]],
               body: Callable[[], Any], *, nowait: bool = False) -> None:
        """Run ``body`` under single semantics (convenience wrapper)."""
        if self.single_enter(names, nowait=nowait):
            try:
                body()
            finally:
                self.single_done(names, nowait=nowait)

    def barrier(self, names: Union[str, Iterable[str]]) -> None:
        """``#pragma hls barrier(names)``: synchronise the largest scope
        of the listed variables."""
        ns = _names(names)
        if not self.program.enabled:
            return
        spec = self.program._widest_scope(ns)
        self.program.sync.barrier(self.ctx, spec)

    # ------------------------------------------------- faithful ABI (IV-A)
    def hls_get_addr_node(self, mod: int, off: int) -> int:
        return self._get_addr("node", mod, off)

    def hls_get_addr_numa(self, mod: int, off: int) -> int:
        return self._get_addr("numa", mod, off)

    def hls_get_addr_cache(self, mod: int, off: int, *, level: Optional[int] = None) -> int:
        spec = ScopeSpec.parse("cache" if level is None else f"cache({level})")
        return self.program.storage.hls_get_addr(self.ctx, spec, mod, off)

    def hls_get_addr_core(self, mod: int, off: int) -> int:
        return self._get_addr("core", mod, off)

    def _get_addr(self, scope: str, mod: int, off: int) -> int:
        spec = ScopeSpec.parse(scope)
        return self.program.storage.hls_get_addr(self.ctx, spec, mod, off)


__all__ = ["HLSProgram", "HLSHandle"]
