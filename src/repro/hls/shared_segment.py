"""HLS on process-based MPIs: the shared-segment backend (section IV-C).

"To be able to share variables and use shared-memory synchronization
algorithms, all HLS variables and the corresponding structures must be
allocated in a memory segment shared by all processes of the same node.
Additionally this shared memory segment should start with the same
virtual address for all processes on the node" -- the isomalloc
technique of PM2.

Here each node gets one segment :class:`~repro.memory.arena.Arena` from
the runtime's :class:`~repro.memory.manager.MemoryManager`.  The
manager's base-address registry hands every node's segment the *same*
region (``reserve_shared``), which is the isomalloc property: the
segment starts at one fixed virtual address on every node, so
cross-process pointers into HLS data are valid.  Distinct nodes never
exchange raw pointers, so aliasing their ranges is safe -- and it is the
one sanctioned exception to the registry's disjointness guarantee.

:func:`enable_process_hls` installs the manager as the runtime's
``hls_segment`` so :class:`~repro.hls.storage.HLSStorage` routes HLS
allocations into it instead of per-process memory.  The
:class:`InterposedHeap` plays the role of the ``LD_PRELOAD`` malloc
interposer: allocations made while a task is inside a ``single`` block
land in the shared segment, others in the task's private space.
"""

from __future__ import annotations

import threading
from typing import Dict

from repro.memory import SEGMENT_KEY
from repro.memory.arena import Arena
from repro.memsim.address_space import Allocation
from repro.runtime.process_mpi import ProcessRuntime


class SharedSegmentManager:
    """Per-node shared segments with the same-virtual-address property."""

    def __init__(self, runtime: ProcessRuntime) -> None:
        self.runtime = runtime

    def segment(self, node: int) -> Arena:
        return self.runtime.memory.segment_arena(node)

    def node_bytes(self, node: int) -> int:
        return self.segment(node).live_bytes

    def virtual_base(self, node: int) -> int:
        """The address every process on ``node`` sees the segment at."""
        base, _limit = self.runtime.memory.registry.reserve_shared(SEGMENT_KEY)
        return base


class InterposedHeap:
    """LD_PRELOAD-style allocator interposition.

    While :meth:`inside_single` is active for a task, its dynamic
    allocations are redirected to the node's shared segment (so an HLS
    pointer assigned inside a ``single`` block references memory every
    process can address); otherwise they go to the task's private space.
    """

    def __init__(self, runtime: ProcessRuntime, segments: SharedSegmentManager) -> None:
        self.runtime = runtime
        self.segments = segments
        self._depth: Dict[int, int] = {}
        self._lock = threading.Lock()

    def enter_single(self, rank: int) -> None:
        with self._lock:
            self._depth[rank] = self._depth.get(rank, 0) + 1

    def exit_single(self, rank: int) -> None:
        with self._lock:
            d = self._depth.get(rank, 0)
            if d <= 0:
                raise RuntimeError(f"task {rank}: exit_single without enter")
            self._depth[rank] = d - 1

    def inside_single(self, rank: int) -> bool:
        with self._lock:
            return self._depth.get(rank, 0) > 0

    def malloc(self, rank: int, nbytes: int, *, label: str = "") -> Allocation:
        if self.inside_single(rank):
            node = self.runtime.node_of(rank)
            return self.segments.segment(node).alloc(
                nbytes, label=label or "heap(shared)", kind="hls"
            )
        return self.runtime.task_space(rank).alloc(
            nbytes, label=label or "heap", kind="app", owner=rank
        )

    def free(self, rank: int, alloc: Allocation) -> None:
        # The allocation's address range identifies which space owns it.
        node = self.runtime.node_of(rank)
        seg = self.segments.segment(node)
        if seg.find(alloc.addr) is alloc:
            seg.free(alloc)
        else:
            self.runtime.task_space(rank).free(alloc)


def enable_process_hls(runtime: ProcessRuntime) -> SharedSegmentManager:
    """Wire the shared-segment backend into a process-based runtime.

    After this, :class:`~repro.hls.storage.HLSStorage` allocates HLS
    module images in the node's shared segment.  The memory manager
    counts each segment arena once per node natively (not once per
    process), so no accounting override is needed.  Returns the manager
    for inspection.
    """
    if not isinstance(runtime, ProcessRuntime):
        raise TypeError("shared segments are only needed for process-based MPIs")
    mgr = SharedSegmentManager(runtime)
    runtime.hls_segment = mgr.segment  # consumed by HLSStorage
    runtime.hls_segment_manager = mgr
    return mgr


__all__ = [
    "SharedSegmentManager",
    "InterposedHeap",
    "enable_process_hls",
]
