"""Source-to-source HLS compiler (the GCC ``-fhls`` pass analog).

The paper's compiler "detects and parses the pragmas, modifies the code
and the visibility of the variables accordingly, and generates calls to
runtime functions" (section IV).  This module does the same for a
Python dialect: ``#pragma hls ...`` comment lines in the source are
scanned (comments do not survive ``ast.parse``, so a line scan pairs
each pragma with the next statement), then an AST transformation

* rewrites every *load* of a registered global ``g`` into
  ``__hls__.get('g')`` -- the moral equivalent of
  ``ptr_a = hls_get_addr_node(0, 0); *ptr_a`` in section IV-A;
* rejects rebinding a registered global (``g = ...``), mirroring the
  fact that a C global's address is fixed -- element updates
  (``g[i] = v``, ``g += 1`` through views) remain possible;
* wraps the statement following ``#pragma hls single(...)`` in the
  generated ``if __hls__.single_enter(...): ... __hls__.single_done(...)``
  form of section IV-B;
* turns ``#pragma hls barrier(...)`` into an ``__hls__.barrier(...)``
  call;
* handles ``#pragma hls <scope>(...)`` at module level by registering
  the named globals as HLS variables of that scope.

Entry points: :func:`hls_compile` (decorator-style, one function) and
:func:`compile_module_source` (whole "compilation unit").
"""

from __future__ import annotations

import ast
import inspect
import textwrap
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.hls.directives import Directive, PragmaError, is_pragma, parse_pragma
from repro.hls.program import HLSProgram


class HLSCompileError(SyntaxError):
    """Source-level HLS violation."""


def scan_pragmas(source: str) -> List[Tuple[int, Directive]]:
    """All pragma directives in ``source`` with their 1-based line numbers."""
    out: List[Tuple[int, Directive]] = []
    for lineno, line in enumerate(source.splitlines(), start=1):
        if is_pragma(line):
            out.append((lineno, parse_pragma(line)))
    return out


class _AccessRewriter(ast.NodeTransformer):
    """Rewrite loads of registered globals through the HLS handle."""

    def __init__(self, hls_names: Sequence[str]) -> None:
        self.hls_names = set(hls_names)
        self._local_shadows: set = set()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> ast.AST:
        # Parameters shadow globals inside nested functions.
        shadow = {a.arg for a in node.args.args + node.args.kwonlyargs}
        saved = self._local_shadows
        self._local_shadows = saved | shadow
        self.generic_visit(node)
        self._local_shadows = saved
        return node

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    def visit_Name(self, node: ast.Name) -> ast.AST:
        if node.id not in self.hls_names or node.id in self._local_shadows:
            return node
        if isinstance(node.ctx, ast.Load):
            return ast.copy_location(
                ast.Call(
                    func=ast.Attribute(
                        value=ast.Name(id="__hls__", ctx=ast.Load()),
                        attr="get",
                        ctx=ast.Load(),
                    ),
                    args=[ast.Constant(value=node.id)],
                    keywords=[],
                ),
                node,
            )
        raise HLSCompileError(
            f"line {node.lineno}: cannot rebind HLS/global variable "
            f"{node.id!r}; update its contents instead (e.g. "
            f"{node.id}[...] = value)"
        )


def _single_wrap(stmt: ast.stmt, d: Directive) -> ast.stmt:
    """``stmt`` -> ``if __hls__.single_enter(vars, nowait=..): try: stmt
    finally: __hls__.single_done(vars, nowait=..)``."""
    vars_tuple = ast.Tuple(
        elts=[ast.Constant(value=v) for v in d.variables], ctx=ast.Load()
    )
    nowait_kw = ast.keyword(arg="nowait", value=ast.Constant(value=d.nowait))

    def handle_call(method: str) -> ast.Call:
        return ast.Call(
            func=ast.Attribute(
                value=ast.Name(id="__hls__", ctx=ast.Load()),
                attr=method,
                ctx=ast.Load(),
            ),
            args=[vars_tuple],
            keywords=[nowait_kw],
        )

    body = ast.Try(
        body=[stmt],
        handlers=[],
        orelse=[],
        finalbody=[ast.Expr(value=handle_call("single_done"))],
    )
    wrapped = ast.If(test=handle_call("single_enter"), body=[body], orelse=[])
    return ast.copy_location(wrapped, stmt)


def _barrier_stmt(d: Directive, template: ast.stmt) -> ast.stmt:
    call = ast.Expr(
        value=ast.Call(
            func=ast.Attribute(
                value=ast.Name(id="__hls__", ctx=ast.Load()),
                attr="barrier",
                ctx=ast.Load(),
            ),
            args=[
                ast.Tuple(
                    elts=[ast.Constant(value=v) for v in d.variables],
                    ctx=ast.Load(),
                )
            ],
            keywords=[],
        )
    )
    return ast.copy_location(call, template)


def _apply_directives_to_body(
    body: List[ast.stmt], pragmas: List[Tuple[int, Directive]], consumed: set
) -> List[ast.stmt]:
    """Attach each pragma to the first statement starting after it.

    Pragmas preceding a statement are bound to it *before* recursing
    into its nested blocks, so a pragma just above a compound statement
    wraps the whole compound, while pragmas inside its body (larger line
    numbers) are bound during the recursion.
    """
    out: List[ast.stmt] = []
    for stmt in body:
        mine = [
            (ln, d)
            for ln, d in pragmas
            if ln not in consumed and ln < stmt.lineno
        ]
        for ln, _d in mine:
            consumed.add(ln)
        for field in ("body", "orelse", "finalbody"):
            sub = getattr(stmt, field, None)
            if isinstance(sub, list) and sub and isinstance(sub[0], ast.stmt):
                setattr(
                    stmt, field, _apply_directives_to_body(sub, pragmas, consumed)
                )
        for handler in getattr(stmt, "handlers", []) or []:
            handler.body = _apply_directives_to_body(
                handler.body, pragmas, consumed
            )
        wrapped: ast.stmt = stmt
        for ln, d in mine:
            if d.kind == "barrier":
                out.append(_barrier_stmt(d, stmt))
            elif d.kind == "single":
                wrapped = _single_wrap(wrapped, d)
            else:
                raise HLSCompileError(
                    f"line {ln}: scope pragma {d} is only valid at module "
                    f"level (like threadprivate)"
                )
        out.append(wrapped)
    return out


def _compile_function_ast(
    func_def: ast.FunctionDef,
    pragmas: List[Tuple[int, Directive]],
    hls_names: Sequence[str],
) -> ast.FunctionDef:
    if not func_def.args.args:
        raise HLSCompileError(
            f"HLS-compiled function {func_def.name!r} must take the task "
            f"context as its first parameter"
        )
    consumed: set = set()
    end = func_def.end_lineno if func_def.end_lineno is not None else 10**9
    local = [(ln, d) for ln, d in pragmas if func_def.lineno <= ln <= end]
    func_def.body = _apply_directives_to_body(func_def.body, local, consumed)
    dangling = [(ln, d) for ln, d in local if ln not in consumed and d.kind != "scope"]
    if dangling:
        ln, d = dangling[0]
        raise HLSCompileError(
            f"line {ln}: pragma {d} is not followed by a statement"
        )
    func_def = _AccessRewriter(hls_names).visit(func_def)
    ctx_name = func_def.args.args[0].arg
    inject = ast.parse(
        f"__hls__ = __hls_program__.attach({ctx_name})"
    ).body[0]
    func_def.body.insert(0, inject)
    func_def.decorator_list = []
    ast.fix_missing_locations(func_def)
    return func_def


def hls_compile(program: HLSProgram) -> Callable[[Callable], Callable]:
    """Decorator: compile one task function against ``program``.

    The function's first parameter must be the task context.  Usage::

        @hls_compile(prog)
        def main(ctx):
            #pragma hls single(table)
            load(table)
            use(table)
    """

    def deco(func: Callable) -> Callable:
        source = textwrap.dedent(inspect.getsource(func))
        pragmas = scan_pragmas(source)
        tree = ast.parse(source)
        func_def = tree.body[0]
        if not isinstance(func_def, ast.FunctionDef):
            raise HLSCompileError("hls_compile expects a plain function")
        func_def = _compile_function_ast(
            func_def, pragmas, program.registry.names()
        )
        module = ast.Module(body=[func_def], type_ignores=[])
        ast.fix_missing_locations(module)
        code = compile(module, filename=f"<hls:{func.__name__}>", mode="exec")
        namespace: Dict[str, Any] = dict(func.__globals__)
        # Recompilation through exec() cannot rebuild cell closures;
        # freeze the captured values instead (like the C compiler sees
        # resolved symbols at link time).
        namespace.update(inspect.getclosurevars(func).nonlocals)
        namespace["__hls_program__"] = program
        exec(code, namespace)
        compiled = namespace[func.__name__]
        compiled.__hls_compiled__ = True
        compiled.__wrapped__ = func
        return compiled

    return deco


def compile_module_source(
    source: str,
    program: HLSProgram,
    *,
    extra_globals: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Compile a whole "compilation unit".

    The source is executed once to materialise module-level globals;
    every global named in a ``#pragma hls <scope>(...)`` directive is
    registered as an HLS variable of that scope (its executed value
    becomes the initializer); every top-level function is then compiled
    like :func:`hls_compile`.  Returns the namespace of compiled
    functions.
    """
    pragmas = scan_pragmas(source)
    namespace: Dict[str, Any] = {"np": np}
    if extra_globals:
        namespace.update(extra_globals)
    exec(compile(source, "<hls-module>", "exec"), namespace)

    # Register scope-pragma'd globals.
    for _ln, d in pragmas:
        if d.kind != "scope":
            continue
        for name in d.variables:
            if name not in namespace:
                raise HLSCompileError(
                    f"pragma names undefined module variable {name!r}"
                )
            value = np.asarray(namespace[name])
            shape = value.shape if value.shape else (1,)
            init = value.reshape(shape).copy()
            program.declare(
                name,
                shape=shape,
                dtype=value.dtype,
                scope=d.scope,
                initializer=lambda v=init: v,
            )

    hls_names = program.registry.names()
    tree = ast.parse(source)
    out: Dict[str, Any] = {}
    for node in tree.body:
        if not isinstance(node, ast.FunctionDef):
            continue
        func_def = _compile_function_ast(node, pragmas, hls_names)
        module = ast.Module(body=[func_def], type_ignores=[])
        ast.fix_missing_locations(module)
        code = compile(module, filename=f"<hls-module:{func_def.name}>", mode="exec")
        fn_ns = dict(namespace)
        fn_ns["__hls_program__"] = program
        exec(code, fn_ns)
        out[func_def.name] = fn_ns[func_def.name]
    return out


__all__ = [
    "HLSCompileError",
    "scan_pragmas",
    "hls_compile",
    "compile_module_source",
]
