"""HLS synchronization: barrier, single, single nowait.

Three directives (paper section IV-B):

* ``#pragma hls barrier(vars)`` -- synchronises every MPI task of the
  *largest* scope among the listed variables;
* ``#pragma hls single(vars)`` -- fused into one modified barrier: the
  **last** task entering executes the block (``hls_single`` returns
  true for it), then ``hls_single_done`` releases the waiters;
* ``#pragma hls single(vars) nowait`` -- the **first** task entering
  executes; per-task counters against a shared per-scope counter
  guarantee exactly-once without any barrier.

Two barrier algorithms are provided, as in the paper: a *flat*
counter+lock barrier, and for the wide scopes (``numa``, ``node``) a
*shared-cache-aware hierarchical* barrier where "all MPI tasks in the
same llc scope synchronize first and only one of them goes to the next
scope".  Functionally both are barriers; they differ in how many
synchronisation operations cross a shared-cache boundary, which the
state exposes as ``local_ops`` / ``cross_ops`` for the ablation bench.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Dict, List, Optional, Tuple, TYPE_CHECKING

from repro.machine.scopes import ScopeInstance, ScopeKind, ScopeSpec
from repro.runtime.abort import note_abort, subscribe_abort
from repro.runtime.errors import AbortError, DeadlockError, MigrationError

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.runtime import Runtime
    from repro.runtime.task import TaskContext

#: cap on one condition wait: abort safety tick for flags that cannot
#: broadcast a wake (bare-Event unit-test construction); parked waiters
#: are normally woken by the release notify or the abort broadcast.
_ABORT_TICK = 1.0


class ScopeSyncState:
    """Synchronisation state of one scope instance."""

    def __init__(
        self,
        instance: ScopeInstance,
        participants: Tuple[int, ...],
        abort_flag: threading.Event,
        *,
        timeout: float,
        groups: Optional[Dict[int, int]] = None,
        faults: Optional[Any] = None,
        condition: Optional[Any] = None,
        clock: Optional[Any] = None,
    ) -> None:
        if not participants:
            raise ValueError(f"scope instance {instance} has no tasks")
        self.instance = instance
        self.participants = participants
        self.size = len(participants)
        self._abort = abort_flag
        self._timeout = timeout
        # Condition + clock injected by the execution backend (a
        # CoopWaker and the virtual clock under backend="coop")
        self._cond = condition if condition is not None else threading.Condition()
        self._clock = clock if clock is not None else time.monotonic
        self._count = 0
        self._generation = 0
        self._arrivals = 0           # monotone; deadline-extension progress
        self._gcount: Dict[int, int] = {}
        # groups: rank -> llc-group id (hierarchical algorithm); None = flat
        self._groups = groups
        self._gsizes: Dict[int, int] = {}
        if groups is not None:
            for r in participants:
                g = groups[r]
                self._gsizes[g] = self._gsizes.get(g, 0) + 1
        self.epoch = 0               # completed barrier/single episodes
        self.nowait_shared = 0       # executed single-nowait blocks
        self._task_nowait: Dict[int, int] = {}
        self.local_ops = 0           # llc-local synchronisation operations
        self.cross_ops = 0           # operations crossing the llc boundary
        #: fault injector (None = chaos off)
        self.faults = faults
        # The missed-abort fix: parked single/barrier waiters only
        # recheck on a notify, so an abort must deliver one (the same
        # signal-abort pattern as Mailbox.receive).
        subscribe_abort(abort_flag, self.wake)

    def wake(self) -> None:
        """Wake every waiter parked on this scope (abort broadcast)."""
        with self._cond:
            self._cond.notify_all()

    def _hit(self, site: str, rank: int) -> None:
        if self.faults is not None:
            self.faults.hit(site, rank, wake=self.wake)

    # ----------------------------------------------------------- accounting
    def _account_arrival(self, rank: int) -> None:
        self._arrivals += 1
        if self._groups is None:
            self.cross_ops += 1      # flat: every arrival hits the hot counter
            return
        g = self._groups[rank]
        self.local_ops += 1
        self._gcount[g] = self._gcount.get(g, 0) + 1
        if self._gcount[g] == self._gsizes[g]:
            self.cross_ops += 1      # group leader goes to the next scope
            self._gcount[g] = 0

    def _wait_generation(self, gen: int) -> None:
        # Monotonic-clock deadline extended only on *arrivals*: neither
        # spurious wakeups (which the chaos harness injects) nor
        # notified-but-unreleased waits can postpone deadlock detection
        # (the old countdown only shrank on timed-out waits, so a
        # steady notify stream starved the timeout forever).
        deadline = self._clock() + self._timeout
        seen = self._arrivals
        while self._generation == gen:
            if self._abort.is_set():
                note_abort(self._abort)
                raise AbortError("job aborted during hls synchronization")
            now = self._clock()
            if self._arrivals != seen:
                seen = self._arrivals
                deadline = now + self._timeout
            elif now >= deadline:
                raise DeadlockError(
                    f"hls sync on {self.instance} timed out with "
                    f"{self._count}/{self.size} arrived -- did every "
                    f"task of the scope execute the directive?"
                )
            self._cond.wait(timeout=min(deadline - now, _ABORT_TICK))

    # -------------------------------------------------------------- barrier
    def barrier(self, rank: int) -> None:
        self._hit("hls.barrier", rank)
        with self._cond:
            self._account_arrival(rank)
            gen = self._generation
            self._count += 1
            if self._count == self.size:
                self._count = 0
                self._generation += 1
                self.epoch += 1
                self._cond.notify_all()
                return
            self._wait_generation(gen)

    # --------------------------------------------------------------- single
    def single_enter(self, rank: int) -> bool:
        """True for the task that must execute the block (the last one
        to arrive, per section IV-B); the others block until
        :meth:`single_done`."""
        self._hit("hls.single", rank)
        with self._cond:
            self._account_arrival(rank)
            gen = self._generation
            self._count += 1
            if self._count == self.size:
                self._count = 0
                return True
            self._wait_generation(gen)
            return False

    def single_done(self, rank: int) -> None:
        with self._cond:
            self._generation += 1
            self.epoch += 1
            self._cond.notify_all()

    # -------------------------------------------------------------- nowait
    def single_nowait_enter(self, rank: int) -> bool:
        """True for the first task reaching this (dynamic) single; no
        barrier either way."""
        self._hit("hls.nowait", rank)
        with self._cond:
            self._account_arrival(rank)
            mine = self._task_nowait.get(rank, 0) + 1
            self._task_nowait[rank] = mine
            if mine > self.nowait_shared:
                self.nowait_shared = mine
                return True
            return False

    # ------------------------------------------------------------ migration
    def sync_signature(self) -> Tuple[int, int]:
        with self._cond:
            return (self.epoch, self.nowait_shared)


class HLSSync:
    """All scope sync states of one program on one runtime."""

    def __init__(
        self,
        runtime: "Runtime",
        *,
        barrier_algorithm: str = "auto",
    ) -> None:
        if barrier_algorithm not in ("auto", "flat", "hierarchical"):
            raise ValueError(f"unknown barrier algorithm {barrier_algorithm!r}")
        self.runtime = runtime
        self.machine = runtime.machine
        self.barrier_algorithm = barrier_algorithm
        self._states: Dict[ScopeInstance, ScopeSyncState] = {}
        self._lock = threading.Lock()
        # a task's directive counts per scope spec, for MPC_Move checks
        self._task_directives: Dict[Tuple[int, ScopeSpec], int] = {}
        runtime.post_move_hooks.append(self._on_move)

    # ----------------------------------------------------------------- state
    def _participants(self, instance: ScopeInstance) -> Tuple[int, ...]:
        m = self.machine
        members = set(m.scope_members(instance))
        return tuple(
            r for r in range(self.runtime.n_tasks)
            if self.runtime.task_pu(r) in members
        )

    def _use_hierarchical(self, spec: ScopeSpec) -> bool:
        if self.barrier_algorithm != "auto":
            return self.barrier_algorithm == "hierarchical"
        # Paper: flat for all scopes except numa and node.
        return spec.kind in (ScopeKind.NUMA, ScopeKind.NODE) and self.machine.llc_level > 0

    def state(self, instance: ScopeInstance) -> ScopeSyncState:
        with self._lock:
            st = self._states.get(instance)
            if st is None:
                participants = self._participants(instance)
                groups = None
                if self._use_hierarchical(instance.spec):
                    llc = ScopeSpec(ScopeKind.CACHE, self.machine.llc_level)
                    groups = {
                        r: self.machine.scope_instance(
                            self.runtime.task_pu(r), llc
                        ).index
                        for r in participants
                    }
                st = ScopeSyncState(
                    instance, participants, self.runtime.abort_flag,
                    timeout=self.runtime.timeout, groups=groups,
                    faults=getattr(self.runtime, "faults", None),
                    condition=self.runtime.condition(),
                    clock=self.runtime.now,
                )
                self._states[instance] = st
            return st

    def _on_move(self, rank: int, new_pu: int) -> None:
        # Participant sets are derived from pinning; drop idle states so
        # they are rebuilt.  States with tasks mid-barrier would have
        # refused the migration via the epoch check anyway.
        with self._lock:
            for inst in list(self._states):
                st = self._states[inst]
                if st._count == 0:
                    del self._states[inst]

    # ------------------------------------------------------------ operations
    def _note_directive(self, rank: int, spec: ScopeSpec) -> None:
        key = (rank, spec)
        self._task_directives[key] = self._task_directives.get(key, 0) + 1

    def barrier(self, ctx: "TaskContext", spec: ScopeSpec) -> None:
        inst = self.machine.scope_instance(ctx.pu, spec)
        self._note_directive(ctx.rank, spec)
        self.state(inst).barrier(ctx.rank)

    def single_enter(self, ctx: "TaskContext", spec: ScopeSpec) -> bool:
        inst = self.machine.scope_instance(ctx.pu, spec)
        self._note_directive(ctx.rank, spec)
        return self.state(inst).single_enter(ctx.rank)

    def single_done(self, ctx: "TaskContext", spec: ScopeSpec) -> None:
        inst = self.machine.scope_instance(ctx.pu, spec)
        self.state(inst).single_done(ctx.rank)

    def single_nowait_enter(self, ctx: "TaskContext", spec: ScopeSpec) -> bool:
        inst = self.machine.scope_instance(ctx.pu, spec)
        self._note_directive(ctx.rank, spec)
        return self.state(inst).single_nowait_enter(ctx.rank)

    # ------------------------------------------------------------- migration
    def check_migration(self, ctx: "TaskContext", new_pu: int) -> None:
        """MPC_Move gate (section IV-A): the migrating task must have
        encountered the same number of single/barrier directives as the
        destination scope instance."""
        for (rank, spec), count in self._task_directives.items():
            if rank != ctx.rank:
                continue
            dst_inst = self.machine.scope_instance(new_pu, spec)
            src_inst = self.machine.scope_instance(ctx.pu, spec)
            if dst_inst == src_inst:
                continue
            st = self._states.get(dst_inst)
            dst_count = sum(st.sync_signature()) if st is not None else 0
            if dst_count != count:
                raise MigrationError(
                    f"task {ctx.rank} encountered {count} hls directives on "
                    f"scope {spec} but destination {dst_inst} has seen "
                    f"{dst_count}"
                )


__all__ = ["ScopeSyncState", "HLSSync"]
