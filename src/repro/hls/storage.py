"""HLS storage: per-scope-instance module images and get-address.

Reproduces the memory layout of figure 2: each MPI task conceptually
holds an array of scope pointers; tasks in the same scope instance point
to the same module array.  Here the "module array" is
``_images[(scope instance, module id)]``; each entry is a
:class:`ModuleImage` backing a real numpy buffer, so sharing is genuine
-- two tasks of one instance get *the same ndarray memory*.

Allocation and initialization happen at the first
``hls_get_addr_<scope>`` call, under a per-(instance, module) lock,
exactly as in section IV-A:

    "Memory for a module is allocated and initialized at the first call
    to the get address function. [...] To handle concurrency when
    allocating and initializing memory for a module [...], a lock is
    associated to each module and each module array."

Private (non-HLS) globals get one image per *task* -- the TLS
privatization thread-based MPIs need for MPI compliance (section VI).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, Optional, Tuple, TYPE_CHECKING

import numpy as np

from repro.machine.scopes import ScopeInstance, ScopeKind, ScopeSpec
from repro.memsim.address_space import Allocation
from repro.hls.variable import HLSModule, HLSRegistry, HLSVariable

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.runtime import Runtime
    from repro.runtime.task import TaskContext


@dataclass
class ModuleImage:
    """One materialised copy of a module's globals."""

    buffer: np.ndarray        # uint8 backing storage
    alloc: Allocation         # simulated placement (for traces/accounting)
    module: HLSModule
    space: object = None      # the address space the alloc came from
                              # (release() frees it there at teardown)

    def view(self, var: HLSVariable) -> np.ndarray:
        """The ndarray view of one variable inside this image."""
        raw = self.buffer[var.offset:var.offset + var.nbytes]
        return raw.view(var.dtype).reshape(var.shape)

    def addr_of(self, var: HLSVariable) -> int:
        """Simulated virtual address of the variable."""
        return self.alloc.addr + var.offset


# Key identifying a storage slot: an HLS scope instance, or a private
# per-task slot.
_SlotKey = Tuple[str, object, int]   # ("hls", ScopeInstance, module) | ("task", rank, module)


class HLSStorage:
    """Materialised storage for one program on one runtime."""

    def __init__(self, runtime: "Runtime", registry: HLSRegistry) -> None:
        self.runtime = runtime
        self.registry = registry
        self._images: Dict[_SlotKey, ModuleImage] = {}
        self._locks: Dict[_SlotKey, threading.Lock] = {}
        self._master = threading.Lock()

    # ----------------------------------------------------------------- slots
    def _slot_lock(self, key: _SlotKey) -> threading.Lock:
        with self._master:
            lk = self._locks.get(key)
            if lk is None:
                lk = threading.Lock()
                self._locks[key] = lk
            return lk

    def _space_for_slot(self, key: _SlotKey, rank: int):
        """Which simulated address space backs this slot."""
        kind, where, _mod = key
        rt = self.runtime
        if kind == "task":
            return rt.space_for(rank)
        # HLS storage lives once per scope instance, in that instance's
        # own arena: a numa- or cache(2)-scoped variable is placed (and
        # accounted) at its level of the hierarchy, not collapsed into
        # the node space.  The process backend instead routes every HLS
        # slot through its per-node shared segment (section IV-C) --
        # processes can only share what the isomalloc segment maps.
        seg = getattr(rt, "hls_segment", None)
        if seg is not None:
            return seg(rt.node_of(rank))
        return rt.memory.scope_arena(where)

    def _materialise(self, key: _SlotKey, module: HLSModule, rank: int) -> ModuleImage:
        with self._slot_lock(key):
            img = self._images.get(key)
            if img is not None:
                return img
            space = self._space_for_slot(key, rank)
            kind, where, _ = key
            label = f"hls:{module.name}@{where}" if kind == "hls" else f"tls:{module.name}@task{where}"
            alloc = space.alloc(
                module.accounting_bytes,
                label=label,
                kind="hls" if kind == "hls" else "app",
                owner=None if kind == "hls" else rank,
            )
            buf = np.zeros(module.image_bytes, dtype=np.uint8)
            img = ModuleImage(buffer=buf, alloc=alloc, module=module,
                              space=space)
            # Initialize every variable of the module now (first use).
            for var in module.variables.values():
                img.view(var)[...] = var.initial_value()
            self._images[key] = img
            return img

    def release(self) -> None:
        """Free every materialised image's simulated allocation.

        Called by :meth:`HLSProgram.close` at program teardown so a
        finished job's ``Runtime.finalize()`` leak report comes back
        clean (the job service enforces that).  Idempotent; images are
        re-materialised on next use if the program keeps running."""
        with self._master:
            images, self._images = dict(self._images), {}
            self._locks = {}
        for img in images.values():
            if img.space is not None:
                img.space.free(img.alloc)

    # ------------------------------------------------------------- addressing
    def slot_key(self, ctx: "TaskContext", var: HLSVariable) -> _SlotKey:
        if not var.is_hls:
            return ("task", ctx.rank, var.module)
        inst = self.scope_instance(ctx, var.scope)
        return ("hls", inst, var.module)

    def scope_instance(self, ctx: "TaskContext", scope: ScopeSpec) -> ScopeInstance:
        return self.runtime.machine.scope_instance(ctx.pu, scope)

    def image(self, ctx: "TaskContext", var: HLSVariable) -> ModuleImage:
        key = self.slot_key(ctx, var)
        img = self._images.get(key)
        if img is None:
            module = self.registry.modules[var.module]
            img = self._materialise(key, module, ctx.rank)
        return img

    def get(self, ctx: "TaskContext", name: str) -> np.ndarray:
        """The paper's generated access path: resolve the task's copy of
        a variable and return the live view."""
        var = self.registry[name]
        var.accessed = True
        return self.image(ctx, var).view(var)

    def addr(self, ctx: "TaskContext", name: str) -> int:
        """Simulated address of this task's copy (for the cache sim)."""
        var = self.registry[name]
        var.accessed = True
        return self.image(ctx, var).addr_of(var)

    # Faithful low-level ABI of section IV-A --------------------------------
    def hls_get_addr(
        self, ctx: "TaskContext", scope: ScopeSpec, mod: int, off: int
    ) -> int:
        """``hls_get_addr_<scope>(size_t mod, size_t off)`` analog:
        returns the simulated address ``hls[<scope>][mod] + off``."""
        module = self.registry.modules[mod]
        var = module.by_offset(off)
        if var.scope != scope:
            raise ValueError(
                f"variable at ({mod}, {off}) has scope {var.scope}, not {scope}"
            )
        var.accessed = True
        return self.image(ctx, var).addr_of(var)

    # ------------------------------------------------------------- accounting
    def hls_images_bytes(self) -> int:
        return sum(
            img.alloc.size for key, img in self._images.items() if key[0] == "hls"
        )

    def private_images_bytes(self) -> int:
        return sum(
            img.alloc.size for key, img in self._images.items() if key[0] == "task"
        )

    def live_bytes_by_level(self) -> Dict[str, int]:
        """HLS image bytes per hierarchy level (figure-2 accounting):
        ``node``/``numa``/``cache(L)``/``core`` for shared images,
        ``task`` for the private per-task copies."""
        from repro.memory import LEVEL_TASK, scope_level

        machine = self.runtime.machine
        out: Dict[str, int] = {}
        for key, img in self._images.items():
            kind, where, _mod = key
            level = (
                scope_level(machine.canonical_scope(where.spec))
                if kind == "hls" else LEVEL_TASK
            )
            out[level] = out.get(level, 0) + img.alloc.size
        return out

    def layout_report(self) -> str:
        """Figure-2-style dump of the live HLS structures, with the
        per-hierarchy-level footprint totals appended."""
        lines = ["HLS storage layout:"]
        for key in sorted(self._images, key=str):
            kind, where, mod = key
            img = self._images[key]
            vars_ = ", ".join(img.module.variables)
            place = f"scope {where}" if kind == "hls" else f"task {where} (private)"
            lines.append(
                f"  module {mod} @ {place}: addr={img.alloc.addr:#x} "
                f"size={img.alloc.size}B vars=[{vars_}]"
            )
        levels = self.live_bytes_by_level()
        if levels:
            lines.append("  bytes per level: " + ", ".join(
                f"{lvl}={levels[lvl]}B" for lvl in sorted(levels)
            ))
        return "\n".join(lines)


__all__ = ["ModuleImage", "HLSStorage"]
